// Package workloads implements the paper's seven benchmark applications
// (Table 2) as execution-driven kernels: every data access goes through
// the simulated memory hierarchy, and the kernels compute on the values
// the hierarchy returns, so compression error propagates into the
// application output exactly as in the paper's methodology.
//
// Since the original binaries (SPEC lbm/wrf, FLASH orbit, etc.) cannot be
// instrumented here, each kernel is a faithful reimplementation of the
// benchmark's core algorithm with inputs generated to mimic the described
// datasets: a car silhouette for lattice, a sphere for lbm, a topographic
// elevation map for kmeans and geo-ordered weather fields for the wrf
// proxy (see DESIGN.md §3).
package workloads

import (
	"fmt"

	"avr/internal/mem"
	"avr/internal/sim"
)

// Scale selects the input size.
type Scale int

const (
	// ScaleSmall targets the PresetSmall system (footprints a few MiB,
	// several times the 256 kB LLC slice); the full matrix runs in
	// seconds.
	ScaleSmall Scale = iota
	// ScaleSlice targets PresetSlice (Table 1 ratios; footprints
	// 8–24 MiB per core slice as in the paper's Table 2).
	ScaleSlice
)

// String names the scale for logs and run manifests.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleSlice:
		return "slice"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// Workload is one benchmark application.
type Workload interface {
	// Name returns the paper's benchmark name.
	Name() string
	// Setup allocates and initialises the dataset in the system's
	// address space (untimed, modelling input loading).
	Setup(sys *sim.System, sc Scale)
	// Run executes the benchmark through the timed memory hierarchy.
	Run(sys *sim.System)
	// Output returns the application output values for the error metric.
	Output(sys *sim.System) []float64
}

// All returns the seven benchmarks in the paper's table order.
func All() []Workload {
	return []Workload{
		NewHeat(), NewLattice(), NewLBM(), NewOrbit(),
		NewKMeans(), NewBScholes(), NewWRF(),
	}
}

// ByName finds a benchmark by its paper name.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// memIO abstracts the memory interface kernels compute through: the
// timed *sim.System during the measured region, or an untimed raw-space
// accessor during warmup (modelling execution before the region of
// interest, fast-forwarded functionally).
type memIO interface {
	LoadF32(addr uint64) float32
	StoreF32(addr uint64, v float32)
	Load32(addr uint64) uint32
	Store32(addr uint64, v uint32)
	Compute(n uint64)
}

// rawIO is the untimed accessor over the bare address space.
type rawIO struct{ s *mem.Space }

func (r rawIO) LoadF32(a uint64) float32     { return r.s.LoadF32(a) }
func (r rawIO) StoreF32(a uint64, v float32) { r.s.StoreF32(a, v) }
func (r rawIO) Load32(a uint64) uint32       { return r.s.Load32(a) }
func (r rawIO) Store32(a uint64, v uint32)   { r.s.Store32(a, v) }
func (r rawIO) Compute(uint64)               {}

// rng is a small deterministic xorshift generator so datasets are
// reproducible across Go versions.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// norm returns an approximately normal sample (Irwin–Hall of 4).
func (r *rng) norm() float64 {
	return (r.float() + r.float() + r.float() + r.float() - 2) * 1.7320508
}
