package avr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"avr/internal/block"
	"avr/internal/compress"
)

// Reference scalar codec: the original Encode/Decode implementations,
// retained verbatim as the oracle for the differential test harness. The
// fast paths in codec.go/codec64.go restructure the same datapath into
// flat allocation-free passes; every stream they produce must be
// byte-identical to these, and every stream they decode must decode to
// the same values. Kept out of the hot path on purpose — clarity over
// speed — and exercised only by tests and fuzz targets.

// referenceEncode is the scalar twin of EncodeTo's fast path.
func (c *Codec) referenceEncode(vals []float32) ([]byte, error) {
	out := make([]byte, 0, len(vals)/2)
	out = append(out, codecMagic[:]...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(vals)))
	out = append(out, n[:]...)

	var blk [compress.BlockValues]uint32
	for off := 0; off < len(vals); off += compress.BlockValues {
		for i := 0; i < compress.BlockValues; i++ {
			j := off + i
			if j >= len(vals) {
				j = len(vals) - 1 // pad with the last value
			}
			blk[i] = math.Float32bits(vals[j])
		}
		res := c.comp.Compress(&blk, compress.Float32)
		if res.OK {
			payload, err := block.Encode(&res)
			if err != nil {
				return nil, err
			}
			hdr := byte(0x80) | byte(res.Method)<<6 | byte(res.SizeLines)
			out = append(out, hdr, byte(res.Bias))
			out = append(out, payload...)
		} else {
			out = append(out, 0, 0)
			var raw [compress.BlockBytes]byte
			block.ValuesToBytes(&blk, raw[:])
			out = append(out, raw[:]...)
		}
	}
	return out, nil
}

// referenceDecode is the scalar twin of DecodeTo's fast path.
func (c *Codec) referenceDecode(data []byte) ([]float32, error) {
	if len(data) < 8 || [4]byte(data[:4]) != codecMagic {
		return nil, errors.New("avr: bad codec magic")
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	minRecord := 2 + compress.LineBytes
	blocks := (count + compress.BlockValues - 1) / compress.BlockValues
	if len(data) < blocks*minRecord {
		return nil, errTruncated
	}
	out := make([]float32, 0, count)
	for len(out) < count {
		if len(data) < 2 {
			return nil, errTruncated
		}
		hdr, bias := data[0], int8(data[1])
		data = data[2:]
		var vals [compress.BlockValues]uint32
		if hdr&0x80 != 0 {
			size := int(hdr & 0x0F)
			if size < 1 || size > compress.MaxCompressedLines {
				return nil, fmt.Errorf("avr: bad block size %d", size)
			}
			if len(data) < size*compress.LineBytes {
				return nil, errTruncated
			}
			summary, bm, outliers, err := block.Decode(data[:size*compress.LineBytes])
			if err != nil {
				return nil, err
			}
			data = data[size*compress.LineBytes:]
			method := compress.Method(hdr >> 6 & 1)
			vals = compress.Decompress(&summary, bm, outliers, method, bias, compress.Float32)
		} else {
			if len(data) < compress.BlockBytes {
				return nil, errTruncated
			}
			block.BytesToValues(data[:compress.BlockBytes], &vals)
			data = data[compress.BlockBytes:]
		}
		for i := 0; i < compress.BlockValues && len(out) < count; i++ {
			out = append(out, math.Float32frombits(vals[i]))
		}
	}
	return out, nil
}

// referenceEncode64 is the scalar twin of Encode64To's fast path.
func (c *Codec) referenceEncode64(vals []float64) ([]byte, error) {
	out := make([]byte, 0, len(vals)*2)
	out = append(out, codec64Magic[:]...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(vals)))
	out = append(out, n[:]...)

	var blk [compress.BlockValues64]uint64
	for off := 0; off < len(vals); off += compress.BlockValues64 {
		for i := 0; i < compress.BlockValues64; i++ {
			j := off + i
			if j >= len(vals) {
				j = len(vals) - 1
			}
			blk[i] = math.Float64bits(vals[j])
		}
		res := c.comp.Compress64(&blk)
		if res.OK {
			hdr := byte(0x80) | byte(res.SizeLines)
			out = append(out, hdr)
			out = binary.LittleEndian.AppendUint16(out, uint16(res.Bias))
			payload := make([]byte, res.SizeLines*compress.LineBytes)
			for i, v := range res.Summary {
				binary.LittleEndian.PutUint64(payload[8*i:], uint64(v))
			}
			if len(res.Outliers) > 0 {
				copy(payload[compress.LineBytes:], res.Bitmap[:])
				p := compress.LineBytes + compress.BitmapBytes64
				for _, o := range res.Outliers {
					binary.LittleEndian.PutUint64(payload[p:], o)
					p += 8
				}
			}
			out = append(out, payload...)
		} else {
			out = append(out, 0, 0, 0)
			var raw [compress.BlockBytes]byte
			for i, v := range blk {
				binary.LittleEndian.PutUint64(raw[8*i:], v)
			}
			out = append(out, raw[:]...)
		}
	}
	return out, nil
}

// referenceDecode64 is the scalar twin of Decode64To's fast path.
func (c *Codec) referenceDecode64(data []byte) ([]float64, error) {
	if len(data) < 8 || [4]byte(data[:4]) != codec64Magic {
		return nil, errors.New("avr: bad codec64 magic")
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	minRecord := 3 + compress.LineBytes
	blocks := (count + compress.BlockValues64 - 1) / compress.BlockValues64
	if len(data) < blocks*minRecord {
		return nil, errTruncated
	}
	out := make([]float64, 0, count)
	for len(out) < count {
		if len(data) < 3 {
			return nil, errTruncated
		}
		hdr := data[0]
		bias := int16(binary.LittleEndian.Uint16(data[1:]))
		data = data[3:]
		var vals [compress.BlockValues64]uint64
		if hdr&0x80 != 0 {
			size := int(hdr & 0x0F)
			if size < 1 || size > compress.MaxCompressedLines {
				return nil, fmt.Errorf("avr: bad block size %d", size)
			}
			if len(data) < size*compress.LineBytes {
				return nil, errTruncated
			}
			var summary [compress.SummaryValues64]int64
			for i := range summary {
				summary[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
			}
			var bm *[compress.BitmapBytes64]byte
			var outliers []uint64
			if size > 1 {
				var b [compress.BitmapBytes64]byte
				copy(b[:], data[compress.LineBytes:])
				bm = &b
				k := 0
				for _, x := range b {
					for ; x != 0; x &= x - 1 {
						k++
					}
				}
				if compress.CompressedLines64(k) != size {
					return nil, err64BitmapSize
				}
				p := compress.LineBytes + compress.BitmapBytes64
				outliers = make([]uint64, k)
				for i := range outliers {
					outliers[i] = binary.LittleEndian.Uint64(data[p:])
					p += 8
				}
			}
			data = data[size*compress.LineBytes:]
			vals = compress.Decompress64(&summary, bm, outliers, bias)
		} else {
			if len(data) < compress.BlockBytes {
				return nil, errTruncated
			}
			for i := range vals {
				vals[i] = binary.LittleEndian.Uint64(data[8*i:])
			}
			data = data[compress.BlockBytes:]
		}
		for i := 0; i < compress.BlockValues64 && len(out) < count; i++ {
			out = append(out, math.Float64frombits(vals[i]))
		}
	}
	return out, nil
}
