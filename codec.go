package avr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"

	"avr/internal/block"
	"avr/internal/compress"
)

// Codec compresses float32 slices with the AVR downsampling scheme as a
// standalone lossy codec: data is cut into 256-value blocks, each block
// is downsampled to a 16-value summary plus outliers when it meets the
// error thresholds, and stored raw otherwise.
//
// Wire format:
//
//	magic "AVR1" | uint32 value count | per-block records
//	record: 1 header byte (bit 7 = compressed, bit 6 = method,
//	        bits 0..3 = size in 64 B lines) | 1 bias byte |
//	        payload (compressed lines, or 1024 B raw)
//
// The decoded output is the approximate reconstruction — the same values
// an AVR memory system would deliver to the processor.
//
// Encode/Decode allocate their result; the EncodeTo/DecodeTo variants
// append into a caller-supplied buffer instead and perform no
// allocations once that buffer has grown to size, which is how the
// store's put/get paths reach 0 allocs/op. The encoded bytes never alias
// codec state, so they stay valid across subsequent calls.
//
// A Codec is NOT safe for concurrent use: the underlying compressor
// carries scratch buffers that are reused across Encode calls. Use one
// Codec per goroutine, or borrow codecs from a pool the way the avrd
// service does (internal/server.CodecPool) — handing a Codec from one
// goroutine to another through a pool is fine as long as uses do not
// overlap.
type Codec struct {
	comp *compress.Compressor

	// Per-call staging blocks. Encode stages the (padded) input block
	// here; Decode reconstructs into rec before appending to the output.
	blk   [compress.BlockValues]uint32
	blk64 [compress.BlockValues64]uint64
	rec   [compress.BlockValues]uint32
	rec64 [compress.BlockValues64]uint64
}

// NewCodec creates a codec with per-value relative error bound t1 (the
// block-average bound is t1/2, following the paper's T1 = 2·T2).
// Non-positive t1 selects the experiment default (1/32).
func NewCodec(t1 float64) *Codec {
	th := compress.DefaultThresholds()
	if t1 > 0 {
		th = compress.Thresholds{T1: t1, T2: t1 / 2}
	}
	return &Codec{comp: compress.NewCompressor(th)}
}

var codecMagic = [4]byte{'A', 'V', 'R', '1'}

// errTruncated reports malformed input to Decode.
var errTruncated = errors.New("avr: truncated codec stream")

// Encode compresses vals. The trailing partial block, if any, is padded
// internally with its last value (padding never decodes back).
func (c *Codec) Encode(vals []float32) ([]byte, error) {
	return c.EncodeTo(make([]byte, 0, 8+len(vals)/2), vals)
}

// EncodeTo appends the encoded stream for vals to dst and returns the
// extended slice. Passing a buffer retained across calls (dst[:0])
// makes the encode path allocation-free; pass nil to let it allocate.
// The output is byte-identical to Encode's.
func (c *Codec) EncodeTo(dst []byte, vals []float32) ([]byte, error) {
	dst = append(dst, codecMagic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vals)))

	for off := 0; off < len(vals); off += compress.BlockValues {
		chunk := vals[off:]
		if len(chunk) > compress.BlockValues {
			chunk = chunk[:compress.BlockValues]
		}
		for i, v := range chunk {
			c.blk[i] = math.Float32bits(v)
		}
		// Pad a trailing partial block with its last value.
		last := c.blk[len(chunk)-1]
		for i := len(chunk); i < compress.BlockValues; i++ {
			c.blk[i] = last
		}
		res := c.comp.CompressFast(&c.blk, compress.Float32)
		if res.OK {
			hdr := byte(0x80) | byte(res.Method)<<6 | byte(res.SizeLines)
			dst = append(dst, hdr, byte(res.Bias))
			var err error
			dst, err = block.AppendEncode(dst, res.Summary, res.Bitmap, res.Outliers, res.SizeLines)
			if err != nil {
				return dst, err
			}
		} else {
			dst = append(dst, 0, 0)
			dst = block.AppendRaw(dst, &c.blk)
		}
	}
	return dst, nil
}

// Decode reconstructs the approximate values from an encoded stream.
func (c *Codec) Decode(data []byte) ([]float32, error) {
	// Size the output exactly when the headers pass the same validation
	// DecodeTo applies (magic, then the allocation-bomb guard).
	if len(data) >= 8 && [4]byte(data[:4]) == codecMagic {
		count := int(binary.LittleEndian.Uint32(data[4:]))
		blocks := (count + compress.BlockValues - 1) / compress.BlockValues
		if len(data)-8 >= blocks*(2+compress.LineBytes) {
			return c.DecodeTo(make([]float32, 0, count), data)
		}
	}
	return c.DecodeTo(nil, data)
}

// DecodeTo appends the decoded values to dst and returns the extended
// slice. With a retained buffer (dst[:0]) the decode path is
// allocation-free. On error the returned slice is nil and dst's backing
// array holds unspecified partial output.
func (c *Codec) DecodeTo(dst []float32, data []byte) ([]float32, error) {
	if len(data) < 8 || [4]byte(data[:4]) != codecMagic {
		return nil, errors.New("avr: bad codec magic")
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	// Guard the length header against allocation bombs: every block
	// record covering 256 values is at least 2 header bytes plus one
	// cacheline of payload, so a stream claiming count values has a hard
	// minimum length. Checking it up front keeps the output allocation
	// proportional to the input size for untrusted streams.
	minRecord := 2 + compress.LineBytes
	blocks := (count + compress.BlockValues - 1) / compress.BlockValues
	if len(data) < blocks*minRecord {
		return nil, errTruncated
	}
	base := len(dst)
	if cap(dst)-base < count {
		dst = slices.Grow(dst, count)
	}
	for len(dst)-base < count {
		if len(data) < 2 {
			return nil, errTruncated
		}
		hdr, bias := data[0], int8(data[1])
		data = data[2:]
		take := count - (len(dst) - base)
		if take > compress.BlockValues {
			take = compress.BlockValues
		}
		n := len(dst)
		dst = dst[:n+take]
		if hdr&0x80 != 0 {
			size := int(hdr & 0x0F)
			if size < 1 || size > compress.MaxCompressedLines {
				return nil, fmt.Errorf("avr: bad block size %d", size)
			}
			if len(data) < size*compress.LineBytes {
				return nil, errTruncated
			}
			view, err := block.DecodeView(data[:size*compress.LineBytes])
			if err != nil {
				return nil, err
			}
			data = data[size*compress.LineBytes:]
			method := compress.Method(hdr >> 6 & 1)
			c.comp.DecompressInto(&c.rec, &view.Summary, view.Bitmap, view.OutlierBytes, method, bias, compress.Float32)
			for i := 0; i < take; i++ {
				dst[n+i] = math.Float32frombits(c.rec[i])
			}
		} else {
			if len(data) < compress.BlockBytes {
				return nil, errTruncated
			}
			for i := 0; i < take; i++ {
				dst[n+i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
			}
			data = data[compress.BlockBytes:]
		}
	}
	return dst, nil
}

// Ratio reports the compression ratio achieved by an encoded stream for
// the given original value count. A non-positive value count or an
// empty stream yields 0, never ±Inf or a negative ratio.
func Ratio(valueCount int, encoded []byte) float64 {
	if valueCount <= 0 || len(encoded) == 0 {
		return 0
	}
	return float64(4*valueCount) / float64(len(encoded))
}
