package avr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"avr/internal/block"
	"avr/internal/compress"
)

// Codec compresses float32 slices with the AVR downsampling scheme as a
// standalone lossy codec: data is cut into 256-value blocks, each block
// is downsampled to a 16-value summary plus outliers when it meets the
// error thresholds, and stored raw otherwise.
//
// Wire format:
//
//	magic "AVR1" | uint32 value count | per-block records
//	record: 1 header byte (bit 7 = compressed, bit 6 = method,
//	        bits 0..3 = size in 64 B lines) | 1 bias byte |
//	        payload (compressed lines, or 1024 B raw)
//
// The decoded output is the approximate reconstruction — the same values
// an AVR memory system would deliver to the processor.
//
// A Codec is NOT safe for concurrent use: the underlying compressor
// carries scratch buffers that are reused across Encode calls. Use one
// Codec per goroutine, or borrow codecs from a pool the way the avrd
// service does (internal/server.CodecPool) — handing a Codec from one
// goroutine to another through a pool is fine as long as uses do not
// overlap.
type Codec struct {
	comp *compress.Compressor
}

// NewCodec creates a codec with per-value relative error bound t1 (the
// block-average bound is t1/2, following the paper's T1 = 2·T2).
// Non-positive t1 selects the experiment default (1/32).
func NewCodec(t1 float64) *Codec {
	th := compress.DefaultThresholds()
	if t1 > 0 {
		th = compress.Thresholds{T1: t1, T2: t1 / 2}
	}
	return &Codec{comp: compress.NewCompressor(th)}
}

var codecMagic = [4]byte{'A', 'V', 'R', '1'}

// errTruncated reports malformed input to Decode.
var errTruncated = errors.New("avr: truncated codec stream")

// Encode compresses vals. The trailing partial block, if any, is padded
// internally with its last value (padding never decodes back).
func (c *Codec) Encode(vals []float32) ([]byte, error) {
	out := make([]byte, 0, len(vals)/2)
	out = append(out, codecMagic[:]...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(vals)))
	out = append(out, n[:]...)

	var blk [compress.BlockValues]uint32
	for off := 0; off < len(vals); off += compress.BlockValues {
		for i := 0; i < compress.BlockValues; i++ {
			j := off + i
			if j >= len(vals) {
				j = len(vals) - 1 // pad with the last value
			}
			blk[i] = math.Float32bits(vals[j])
		}
		res := c.comp.Compress(&blk, compress.Float32)
		if res.OK {
			payload, err := block.Encode(&res)
			if err != nil {
				return nil, err
			}
			hdr := byte(0x80) | byte(res.Method)<<6 | byte(res.SizeLines)
			out = append(out, hdr, byte(res.Bias))
			out = append(out, payload...)
		} else {
			out = append(out, 0, 0)
			var raw [compress.BlockBytes]byte
			block.ValuesToBytes(&blk, raw[:])
			out = append(out, raw[:]...)
		}
	}
	return out, nil
}

// Decode reconstructs the approximate values from an encoded stream.
func (c *Codec) Decode(data []byte) ([]float32, error) {
	if len(data) < 8 || [4]byte(data[:4]) != codecMagic {
		return nil, errors.New("avr: bad codec magic")
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	// Guard the length header against allocation bombs: every block
	// record covering 256 values is at least 2 header bytes plus one
	// cacheline of payload, so a stream claiming count values has a hard
	// minimum length. Checking it up front keeps the output allocation
	// proportional to the input size for untrusted streams.
	minRecord := 2 + compress.LineBytes
	blocks := (count + compress.BlockValues - 1) / compress.BlockValues
	if len(data) < blocks*minRecord {
		return nil, errTruncated
	}
	out := make([]float32, 0, count)
	for len(out) < count {
		if len(data) < 2 {
			return nil, errTruncated
		}
		hdr, bias := data[0], int8(data[1])
		data = data[2:]
		var vals [compress.BlockValues]uint32
		if hdr&0x80 != 0 {
			size := int(hdr & 0x0F)
			if size < 1 || size > compress.MaxCompressedLines {
				return nil, fmt.Errorf("avr: bad block size %d", size)
			}
			if len(data) < size*compress.LineBytes {
				return nil, errTruncated
			}
			summary, bm, outliers, err := block.Decode(data[:size*compress.LineBytes])
			if err != nil {
				return nil, err
			}
			data = data[size*compress.LineBytes:]
			method := compress.Method(hdr >> 6 & 1)
			vals = compress.Decompress(&summary, bm, outliers, method, bias, compress.Float32)
		} else {
			if len(data) < compress.BlockBytes {
				return nil, errTruncated
			}
			block.BytesToValues(data[:compress.BlockBytes], &vals)
			data = data[compress.BlockBytes:]
		}
		for i := 0; i < compress.BlockValues && len(out) < count; i++ {
			out = append(out, math.Float32frombits(vals[i]))
		}
	}
	return out, nil
}

// Ratio reports the compression ratio achieved by an encoded stream for
// the given original value count. A non-positive value count or an
// empty stream yields 0, never ±Inf or a negative ratio.
func Ratio(valueCount int, encoded []byte) float64 {
	if valueCount <= 0 || len(encoded) == 0 {
		return 0
	}
	return float64(4*valueCount) / float64(len(encoded))
}
