package avr

// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation (run them with `go test -bench 'Table|Fig'`), plus
// microbenchmarks of the performance-critical simulator components.
//
// The experiment benchmarks share a lazily built benchmark × design
// matrix (≈20 s of simulation, paid once per `go test -bench` process);
// each benchmark then regenerates its table/figure from the memoised
// runs and reports the headline numbers as custom metrics.

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"avr/internal/compress"
	"avr/internal/core"
	"avr/internal/dram"
	"avr/internal/experiments"
	"avr/internal/mem"
	"avr/internal/sim"
	"avr/internal/workloads"
)

var (
	matrixOnce   sync.Once
	matrixRunner *experiments.Runner
)

func matrix(b *testing.B) *experiments.Runner {
	b.Helper()
	matrixOnce.Do(func() {
		matrixRunner = experiments.NewRunner(workloads.ScaleSmall)
		if err := matrixRunner.Prefetch(experiments.Benchmarks(), sim.Designs); err != nil {
			b.Fatal(err)
		}
	})
	return matrixRunner
}

// benchReport runs one experiment per iteration from the warm matrix.
func benchReport(b *testing.B, id string) experiments.Report {
	r := matrix(b)
	b.ResetTimer()
	var rep experiments.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = r.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// BenchmarkTable3OutputError regenerates Table 3 (application output
// error per design) and reports AVR's error on heat.
func BenchmarkTable3OutputError(b *testing.B) {
	benchReport(b, "table3")
	e, err := matrix(b).OutputError("heat", sim.AVR)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(e*100, "heat-avr-err-%")
}

// BenchmarkTable4Compression regenerates Table 4 (compression ratio and
// footprint) and reports heat's ratio.
func BenchmarkTable4Compression(b *testing.B) {
	benchReport(b, "table4")
	e, err := matrix(b).Run("heat", sim.AVR)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(e.Result.CompressionRatio, "heat-ratio")
}

// BenchmarkFig9ExecutionTime regenerates Figure 9 and reports AVR's
// geomean normalised execution time.
func BenchmarkFig9ExecutionTime(b *testing.B) {
	benchReport(b, "fig9")
	b.ReportMetric(normGeomean(b, func(e *experiments.Entry) float64 {
		return float64(e.Result.Cycles)
	}), "avr-exec-geomean")
}

// BenchmarkFig10Energy regenerates the Figure 10 energy breakdown.
func BenchmarkFig10Energy(b *testing.B) {
	benchReport(b, "fig10")
	b.ReportMetric(normGeomean(b, func(e *experiments.Entry) float64 {
		return e.Result.Energy.Total()
	}), "avr-energy-geomean")
}

// BenchmarkFig11Traffic regenerates the Figure 11 memory-traffic figure.
func BenchmarkFig11Traffic(b *testing.B) {
	benchReport(b, "fig11")
	b.ReportMetric(normGeomean(b, func(e *experiments.Entry) float64 {
		return float64(e.Result.DRAM.TotalBytes())
	}), "avr-traffic-geomean")
}

// BenchmarkFig12AMAT regenerates the Figure 12 AMAT figure.
func BenchmarkFig12AMAT(b *testing.B) {
	benchReport(b, "fig12")
	b.ReportMetric(normGeomean(b, func(e *experiments.Entry) float64 {
		return e.Result.AMAT
	}), "avr-amat-geomean")
}

// BenchmarkFig13MPKI regenerates the Figure 13 MPKI figure.
func BenchmarkFig13MPKI(b *testing.B) {
	benchReport(b, "fig13")
	b.ReportMetric(normGeomean(b, func(e *experiments.Entry) float64 {
		return e.Result.MPKI
	}), "avr-mpki-geomean")
}

// BenchmarkFig14Requests regenerates the Figure 14 request breakdown and
// reports the fraction of heat's approximate requests served on-chip.
func BenchmarkFig14Requests(b *testing.B) {
	benchReport(b, "fig14")
	e, err := matrix(b).Run("heat", sim.AVR)
	if err != nil {
		b.Fatal(err)
	}
	st := e.Result.AVRStats
	total := st.ApproxMiss + st.ApproxUncompHit + st.ApproxDBUFHit + st.ApproxCompHit
	if total > 0 {
		b.ReportMetric(100*float64(total-st.ApproxMiss)/float64(total), "heat-onchip-%")
	}
}

// BenchmarkFig15Evictions regenerates the Figure 15 eviction breakdown
// and reports heat's lazy-writeback share.
func BenchmarkFig15Evictions(b *testing.B) {
	benchReport(b, "fig15")
	e, err := matrix(b).Run("heat", sim.AVR)
	if err != nil {
		b.Fatal(err)
	}
	st := e.Result.AVRStats
	total := st.EvRecompress + st.EvLazyWB + st.EvFetchRecompress + st.EvUncompWB
	if total > 0 {
		b.ReportMetric(100*float64(st.EvLazyWB)/float64(total), "heat-lazy-%")
	}
}

// normGeomean computes AVR's geometric-mean metric normalised to
// baseline over all benchmarks, from the warm matrix.
func normGeomean(b *testing.B, metric func(*experiments.Entry) float64) float64 {
	b.Helper()
	r := matrix(b)
	var logSum float64
	var n int
	for _, bench := range experiments.Benchmarks() {
		base, err := r.Run(bench, sim.Baseline)
		if err != nil {
			b.Fatal(err)
		}
		e, err := r.Run(bench, sim.AVR)
		if err != nil {
			b.Fatal(err)
		}
		mb := metric(base)
		if mb == 0 {
			continue
		}
		v := metric(e) / mb
		if v <= 0 {
			v = 1e-9
		}
		logSum += math.Log(v)
		n++
	}
	return math.Exp(logSum / float64(n))
}

// ---- microbenchmarks ----

// BenchmarkCompressBlock measures compressor throughput on a smooth
// block (both variants attempted, as in hardware).
func BenchmarkCompressBlock(b *testing.B) {
	c := compress.NewCompressor(compress.DefaultThresholds())
	var blk [compress.BlockValues]uint32
	for i := range blk {
		blk[i] = math.Float32bits(100 + float32(i)*0.03)
	}
	b.SetBytes(compress.BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Compress(&blk, compress.Float32)
		if !r.OK {
			b.Fatal("compression failed")
		}
	}
}

// BenchmarkCompressBlockNoisy measures the worst case: a block that
// fails after producing many outliers.
func BenchmarkCompressBlockNoisy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := compress.NewCompressor(compress.DefaultThresholds())
	var blk [compress.BlockValues]uint32
	for i := range blk {
		blk[i] = math.Float32bits(float32(rng.NormFloat64()) * float32(math.Exp2(float64(rng.Intn(20)-10))))
	}
	b.SetBytes(compress.BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(&blk, compress.Float32)
	}
}

// BenchmarkDecompressBlock measures reconstruction throughput.
func BenchmarkDecompressBlock(b *testing.B) {
	c := compress.NewCompressor(compress.DefaultThresholds())
	var blk [compress.BlockValues]uint32
	for i := range blk {
		blk[i] = math.Float32bits(100 + float32(i)*0.03)
	}
	r := c.Compress(&blk, compress.Float32)
	var bm *[compress.BitmapBytes]byte
	if len(r.Outliers) > 0 {
		bm = &r.Bitmap
	}
	b.SetBytes(compress.BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compress.Decompress(&r.Summary, bm, r.Outliers, r.Method, r.Bias, compress.Float32)
	}
}

// BenchmarkAVRLLCHit measures the AVR LLC's hot lookup path.
func BenchmarkAVRLLCHit(b *testing.B) {
	space := mem.NewSpace(8 << 20)
	base := space.AllocApprox(1<<20, compress.Float32)
	d := dram.New(dram.DDR4(1, 1))
	llc := core.New(core.DefaultConfig(256<<10), space, d)
	llc.Access(0, base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		llc.Access(uint64(i), base)
	}
}

// BenchmarkDRAMAccess measures the DRAM timing model.
func BenchmarkDRAMAccess(b *testing.B) {
	d := dram.New(dram.DDR4(2, 1))
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = d.Access(now, uint64(i)*64, i&1 == 0, false)
	}
}

// BenchmarkCodecEncode measures end-to-end codec throughput.
func BenchmarkCodecEncode(b *testing.B) {
	c := NewCodec(0)
	vals := make([]float32, 64*1024)
	for i := range vals {
		vals[i] = float32(50 + 10*math.Sin(float64(i)/80))
	}
	b.SetBytes(int64(4 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(vals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorHeatAVR measures full-system simulation speed
// (simulated instructions per second).
func BenchmarkSimulatorHeatAVR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := workloads.NewHeat()
		sys := sim.New(sim.PresetSmall(sim.AVR))
		w.Setup(sys, workloads.ScaleSmall)
		sys.Prime()
		w.Run(sys)
		res := sys.Finish("heat")
		b.ReportMetric(float64(res.Instructions), "sim-insts/op")
	}
}
