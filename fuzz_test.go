package avr

import (
	"encoding/binary"
	"math"
	"testing"
)

// codecFuzzSeeds returns valid encoded streams (one compressible, one
// raw-fallback, one with a partial block) plus adversarial mutations of
// them, shared by both fuzz targets via the enc function.
func codecFuzzSeeds(f *testing.F, enc func(n int, smooth bool) []byte) {
	f.Add(enc(1024, true))
	f.Add(enc(1024, false))
	f.Add(enc(100, true)) // partial trailing block
	// Valid stream with the count header inflated to an absurd value: a
	// classic allocation bomb, which Decode must reject cheaply.
	bomb := enc(1024, true)
	binary.LittleEndian.PutUint32(bomb[4:], math.MaxUint32)
	f.Add(bomb)
	// Truncated mid-record.
	tr := enc(1024, true)
	f.Add(tr[:len(tr)-len(tr)/3])
	f.Add([]byte("AVR1"))
	f.Add([]byte("AVR8"))
	f.Add([]byte{})
}

// fuzzVals returns a deterministic test signal: smooth (compresses) or
// bit-noisy (falls back to raw blocks).
func fuzzVals(n int, smooth bool) []float64 {
	out := make([]float64, n)
	for i := range out {
		if smooth {
			out[i] = 100 + math.Sin(float64(i)/30)
		} else {
			out[i] = math.Float64frombits(0x9E3779B97F4A7C15 * uint64(i+1))
		}
	}
	return out
}

// FuzzCodecDecode feeds arbitrary bytes to the fp32 wire-format decoder
// — the surface avrd exposes to untrusted input. The contract: Decode
// returns an error or exactly the header's value count; it never panics,
// and never allocates more output than the input length can justify
// (the length-header guard caps the result at BlockValues values per
// minimal block record).
func FuzzCodecDecode(f *testing.F) {
	codecFuzzSeeds(f, func(n int, smooth bool) []byte {
		vals := make([]float32, n)
		for i, v := range fuzzVals(n, smooth) {
			vals[i] = float32(v)
		}
		enc, err := NewCodec(0).Encode(vals)
		if err != nil {
			f.Fatal(err)
		}
		return enc
	})

	c := NewCodec(0)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := c.Decode(data)
		if err != nil {
			return
		}
		if len(data) < 8 {
			t.Fatalf("accepted %d-byte stream", len(data))
		}
		count := int(binary.LittleEndian.Uint32(data[4:]))
		if len(dec) != count {
			t.Fatalf("decoded %d values, header says %d", len(dec), count)
		}
		// Over-allocation guard: output bytes must be proportional to
		// input bytes (a minimal 66-byte record covers 256 values).
		if 4*len(dec) > 16*len(data)+4096 {
			t.Fatalf("decoded %d values from %d input bytes", len(dec), len(data))
		}
	})
}

// FuzzCodecDecode64 is FuzzCodecDecode for the fp64 wire format.
func FuzzCodecDecode64(f *testing.F) {
	codecFuzzSeeds(f, func(n int, smooth bool) []byte {
		enc, err := NewCodec(0).Encode64(fuzzVals(n, smooth))
		if err != nil {
			f.Fatal(err)
		}
		return enc
	})

	c := NewCodec(0)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := c.Decode64(data)
		if err != nil {
			return
		}
		if len(data) < 8 {
			t.Fatalf("accepted %d-byte stream", len(data))
		}
		count := int(binary.LittleEndian.Uint32(data[4:]))
		if len(dec) != count {
			t.Fatalf("decoded %d values, header says %d", len(dec), count)
		}
		if 8*len(dec) > 16*len(data)+4096 {
			t.Fatalf("decoded %d values from %d input bytes", len(dec), len(data))
		}
	})
}

// differentialSeed packs a deterministic signal into little-endian words
// for the differential fuzz targets.
func differentialSeed(width int) []byte {
	vals := fuzzVals(300, true)
	out := make([]byte, 0, width/8*len(vals))
	for i, v := range vals {
		if i%41 == 0 {
			v *= 1e6 // outlier spikes
		}
		if width == 32 {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(v)))
		} else {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	return out
}

// FuzzCodecDifferential interprets arbitrary bytes as fp32 bit patterns
// and requires the fast codec (EncodeTo/DecodeTo slice passes plus the
// SIMD kernels underneath) to produce a stream byte-identical to the
// retained reference scalar codec, and both decodes to agree bit for
// bit — the same oracle the differential unit tests pin, driven by the
// fuzzer's value patterns instead of the workload generators.
func FuzzCodecDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add(differentialSeed(32))
	f.Add([]byte{0x00, 0x00, 0xC0, 0x7F, 0x00, 0x00, 0x80, 0xFF}) // NaN, -Inf
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		vals := make([]float32, len(data)/4)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
		}
		assertCodecDifferential32(t, vals)
	})
}

// FuzzCodecDifferential64 is FuzzCodecDifferential for the fp64 codec.
func FuzzCodecDifferential64(f *testing.F) {
	f.Add([]byte{})
	f.Add(differentialSeed(64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		vals := make([]float64, len(data)/8)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		assertCodecDifferential64(t, vals)
	})
}
