package avr

import (
	"math"
	"testing"

	"avr/internal/compress"
)

// The size tests pin the wire-format byte accounting end to end: stream
// header, per-record header, summary line, bitmap and outlier payload
// rounding to whole cachelines — and that Ratio/Ratio64 agree exactly
// with the bytes EncodeTo produces.

// spikeBlock32 builds one compressible 256-value block holding exactly
// k outliers: a flat base with one moderate spike per 16-value
// sub-block. The spike shifts its sub-block average by 0.94 — inside
// the mantissa error bound for the base values (Δ < 2 at exponent 6) —
// while the spike itself, reconstructed near the base, is far outside
// its own bound, so each spike is an outlier and nothing else is.
func spikeBlock32(k int) []float32 {
	vals := make([]float32, compress.BlockValues)
	for i := range vals {
		vals[i] = 100
	}
	for s := 0; s < k; s++ {
		vals[16*s+5] = 115
	}
	return vals
}

func spikeBlock64(k int) []float64 {
	vals := make([]float64, compress.BlockValues64)
	for i := range vals {
		vals[i] = 100
	}
	for s := 0; s < k; s++ {
		vals[16*s+5] = 115
	}
	return vals
}

func TestEncodedSizeAccounting32(t *testing.T) {
	// Record: 1 header byte + 1 bias byte + SizeLines×64; SizeLines is 1
	// for the summary line plus, when outliers exist, the rounded-up
	// lines holding the 32 B bitmap and 4 B outliers. Stream: 8-byte
	// header ("AVR1" + count) plus the records.
	cases := []struct {
		k, wantStream int
	}{
		{0, 8 + 2 + 1*64}, // 74: summary line only
		{1, 8 + 2 + 2*64}, // 138: bitmap+1 outlier start a second line
		{8, 8 + 2 + 2*64}, // 138: 32+32 B exactly fill that line
		{9, 8 + 2 + 3*64}, // 202: the 9th outlier spills a third line
	}
	c := NewCodec(0)
	var comp compress.Compressor = *compress.NewCompressor(compress.DefaultThresholds())
	for _, tc := range cases {
		vals := spikeBlock32(tc.k)
		var blk [compress.BlockValues]uint32
		for i, v := range vals {
			blk[i] = math.Float32bits(v)
		}
		res := comp.CompressFast(&blk, compress.Float32)
		if !res.OK || len(res.Outliers) != tc.k {
			t.Fatalf("k=%d: construction yielded ok=%v outliers=%d", tc.k, res.OK, len(res.Outliers))
		}
		if got := compress.CompressedLines(tc.k); 2+64*got != tc.wantStream-8 {
			t.Fatalf("k=%d: CompressedLines=%d disagrees with pinned record size %d", tc.k, got, tc.wantStream-8)
		}
		enc, err := c.EncodeTo(nil, vals)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != tc.wantStream {
			t.Fatalf("k=%d: encoded %d bytes, want %d", tc.k, len(enc), tc.wantStream)
		}
		if got, want := Ratio(len(vals), enc), float64(4*len(vals))/float64(tc.wantStream); got != want {
			t.Fatalf("k=%d: Ratio=%v, want %v", tc.k, got, want)
		}
	}
	// Raw fallback: 2 header bytes + the 1 KiB block, ratio just under 1.
	noise := make([]float32, compress.BlockValues)
	for i := range noise {
		noise[i] = math.Float32frombits(0x9E3779B9 * uint32(i+1))
	}
	enc, err := c.EncodeTo(nil, noise)
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 + 2 + compress.BlockBytes; len(enc) != want { // 1034
		t.Fatalf("raw block encoded %d bytes, want %d", len(enc), want)
	}
	if got := Ratio(len(noise), enc); got >= 1 {
		t.Fatalf("raw block ratio %v, want < 1", got)
	}
}

func TestEncodedSizeAccounting64(t *testing.T) {
	// fp64 record: 1 header byte + 2 bias bytes + SizeLines×64; the
	// 128-value geometry has a 16 B bitmap and 8 B outliers.
	cases := []struct {
		k, wantStream int
	}{
		{0, 8 + 3 + 1*64}, // 75
		{1, 8 + 3 + 2*64}, // 139: bitmap+1 outlier in the second line
		{6, 8 + 3 + 2*64}, // 139: 16+48 B exactly fill it
		{7, 8 + 3 + 3*64}, // 203: the 7th outlier spills a third line
	}
	c := NewCodec(0)
	comp := compress.NewCompressor(compress.DefaultThresholds())
	for _, tc := range cases {
		vals := spikeBlock64(tc.k)
		var blk [compress.BlockValues64]uint64
		for i, v := range vals {
			blk[i] = math.Float64bits(v)
		}
		res := comp.CompressFast64(&blk)
		if !res.OK || len(res.Outliers) != tc.k {
			t.Fatalf("k=%d: construction yielded ok=%v outliers=%d", tc.k, res.OK, len(res.Outliers))
		}
		if got := compress.CompressedLines64(tc.k); 3+64*got != tc.wantStream-8 {
			t.Fatalf("k=%d: CompressedLines64=%d disagrees with pinned record size %d", tc.k, got, tc.wantStream-8)
		}
		enc, err := c.Encode64To(nil, vals)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != tc.wantStream {
			t.Fatalf("k=%d: encoded %d bytes, want %d", tc.k, len(enc), tc.wantStream)
		}
		if got, want := Ratio64(len(vals), enc), float64(8*len(vals))/float64(tc.wantStream); got != want {
			t.Fatalf("k=%d: Ratio64=%v, want %v", tc.k, got, want)
		}
	}
	noise := make([]float64, compress.BlockValues64)
	for i := range noise {
		noise[i] = math.Float64frombits(0x9E3779B97F4A7C15 * uint64(i+1))
	}
	enc, err := c.Encode64To(nil, noise)
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 + 3 + compress.BlockBytes; len(enc) != want { // 1035
		t.Fatalf("raw block encoded %d bytes, want %d", len(enc), want)
	}
	if got := Ratio64(len(noise), enc); got >= 1 {
		t.Fatalf("raw block ratio %v, want < 1", got)
	}
}

// TestRatioAgreesAcrossEncodePaths pins Ratio consistency between
// Encode and EncodeTo output on multi-block streams.
func TestRatioAgreesAcrossEncodePaths(t *testing.T) {
	vals := make([]float32, 1000)
	for i := range vals {
		vals[i] = 100
	}
	c := NewCodec(0)
	a, err := c.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.EncodeTo(make([]byte, 0, 64), vals)
	if err != nil {
		t.Fatal(err)
	}
	if Ratio(len(vals), a) != Ratio(len(vals), b) {
		t.Fatalf("Ratio differs between Encode (%d B) and EncodeTo (%d B)", len(a), len(b))
	}
	if r := Ratio(len(vals), a); r < 10 {
		t.Fatalf("constant-ish stream ratio %v, want ≥ 10", r)
	}
	if Ratio(0, a) != 0 || Ratio(100, nil) != 0 {
		t.Fatal("Ratio degenerate inputs must yield 0")
	}
}
