// Package avr is the public facade of the AVR reproduction: Approximate
// Value Reconstruction (Eldstål-Damlin, Trancoso, Sourdis — ICPP 2019),
// an architecture for approximate memory compression.
//
// The package exposes four layers:
//
//   - Codec: the AVR downsampling compressor as a standalone lossy codec
//     for float32/int32 data, with the paper's error-threshold knobs.
//     A Codec is not safe for concurrent use; see the type's doc.
//   - Simulation: the full architectural simulator (interval cores,
//     cache hierarchy, the AVR decoupled LLC, DDR4 timing, energy) and
//     the five memory-system designs of the paper's evaluation.
//   - Experiments: the harness regenerating every table and figure of
//     the paper (see cmd/avrtables).
//   - Serving: the codec as a network service — cmd/avrd exposes
//     encode/decode over HTTP with pooled codecs, bounded-queue
//     admission and graceful drain (internal/server), and cmd/avrload
//     is its load harness.
//
// The heavy lifting lives in internal/ packages; this facade keeps a
// small, stable surface.
package avr

import (
	"fmt"

	"avr/internal/compress"
	"avr/internal/experiments"
	"avr/internal/sim"
	"avr/internal/workloads"
)

// Design identifies a memory-system design point from the paper's
// evaluation.
type Design = sim.Design

// The five design points.
const (
	Baseline     = sim.Baseline
	Doppelganger = sim.Dganger
	Truncate     = sim.Truncate
	ZeroAVR      = sim.ZeroAVR
	AVR          = sim.AVR
)

// Scale selects simulation input scale.
type Scale = workloads.Scale

// Input scales.
const (
	ScaleSmall = workloads.ScaleSmall
	ScaleSlice = workloads.ScaleSlice
)

// Result is the full statistics record of one simulation run.
type Result = sim.Result

// Benchmarks returns the names of the paper's seven benchmarks.
func Benchmarks() []string { return experiments.Benchmarks() }

// RunBenchmark simulates one benchmark on one design at the given scale
// and returns its statistics.
func RunBenchmark(benchmark string, d Design, sc Scale) (Result, error) {
	w, err := workloads.ByName(benchmark)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.PresetSmall(d)
	if sc == ScaleSlice {
		cfg = sim.PresetSlice(d)
	}
	sys := sim.New(cfg)
	w.Setup(sys, sc)
	sys.Prime()
	w.Run(sys)
	return sys.Finish(benchmark), nil
}

// MultiResult is the statistics record of a multicore run.
type MultiResult = sim.MultiResult

// RunMulticore simulates one benchmark on an n-core CMP with a shared
// LLC and DRAM (deterministic scheduling, barrier-flush coherence).
// Only benchmarks with a parallel decomposition are supported: heat,
// kmeans and bscholes.
func RunMulticore(benchmark string, d Design, cores int, sc Scale) (MultiResult, error) {
	w, err := workloads.ParallelByName(benchmark)
	if err != nil {
		return MultiResult{}, err
	}
	cfg := sim.PresetSmall(d)
	if sc == ScaleSlice {
		cfg = sim.PresetSlice(d)
	}
	// Shared-resource CMP: undo the per-core slicing.
	cfg.LLCBytes *= 4
	cfg.DRAMChannels = 2
	cfg.DRAMSliceDiv = 1
	m := sim.NewMulti(cfg, cores)
	w.Setup(m.Shared(), sc)
	m.Prime()
	m.Run(w.RunShard)
	return m.Finish(benchmark), nil
}

// OutputError runs a benchmark on the baseline and on design d and
// returns the paper's quality metric: the mean relative error of the
// design's application output against the exact baseline output.
func OutputError(benchmark string, d Design, sc Scale) (float64, error) {
	r := experiments.NewRunner(sc)
	return r.OutputError(benchmark, d)
}

// Experiment regenerates one of the paper's tables or figures by id
// (table3, table4, fig9..fig15, overhead) at the given scale, returning
// the rendered text table and CSV.
func Experiment(id string, sc Scale) (title, text, csv string, err error) {
	r := experiments.NewRunner(sc)
	rep, err := r.ByID(id)
	if err != nil {
		return "", "", "", err
	}
	return rep.Title, rep.Text, rep.CSV, nil
}

// ExperimentIDs lists the regenerable experiments.
func ExperimentIDs() []string { return experiments.IDs() }

// Validate sanity-checks a design value (useful when parsing flags).
func Validate(d Design) error {
	for _, k := range sim.Designs {
		if k == d {
			return nil
		}
	}
	return fmt.Errorf("avr: unknown design %d", int(d))
}

// DefaultThresholds returns the compressor error knobs used throughout
// the experiments (T1 per-value, T2 = T1/2 block average; §3.3).
func DefaultThresholds() (t1, t2 float64) {
	t := compress.DefaultThresholds()
	return t.T1, t.T2
}
