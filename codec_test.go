package avr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smoothSignal(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(50 + 10*math.Sin(float64(i)/40))
	}
	return out
}

func TestCodecRoundTripSmooth(t *testing.T) {
	c := NewCodec(0)
	in := smoothSignal(4096)
	enc, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(in) {
		t.Fatalf("decoded %d values, want %d", len(dec), len(in))
	}
	t1, _ := DefaultThresholds()
	for i := range in {
		re := math.Abs(float64(dec[i]-in[i])) / math.Abs(float64(in[i]))
		if re > t1 {
			t.Fatalf("value %d error %v beyond T1", i, re)
		}
	}
	if r := Ratio(len(in), enc); r < 4 {
		t.Errorf("smooth signal ratio = %.1f, want > 4", r)
	}
}

func TestCodecIncompressibleStoredRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := make([]float32, 2048)
	for i := range in {
		in[i] = float32(rng.NormFloat64()) * float32(math.Exp2(float64(rng.Intn(40)-20)))
	}
	c := NewCodec(0)
	enc, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Raw blocks must decode bit-exactly.
	for i := range in {
		if dec[i] != in[i] {
			t.Fatalf("raw value %d altered: %v -> %v", i, in[i], dec[i])
		}
	}
	if r := Ratio(len(in), enc); r > 1.01 {
		t.Errorf("incompressible data ratio = %.2f, want ≈1", r)
	}
}

func TestCodecPartialBlock(t *testing.T) {
	c := NewCodec(0)
	in := smoothSignal(300) // 1 full block + 44 values
	enc, err := c.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 300 {
		t.Fatalf("decoded %d, want 300", len(dec))
	}
}

func TestCodecEmpty(t *testing.T) {
	c := NewCodec(0)
	enc, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Errorf("decoded %d values from empty stream", len(dec))
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	c := NewCodec(0)
	if _, err := c.Decode([]byte("not an avr stream")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := c.Decode(nil); err == nil {
		t.Error("nil accepted")
	}
	// Truncated valid stream.
	enc, _ := c.Encode(smoothSignal(512))
	if _, err := c.Decode(enc[:len(enc)-10]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestCodecThresholdKnob(t *testing.T) {
	in := make([]float32, 4096)
	rng := rand.New(rand.NewSource(5))
	for i := range in {
		in[i] = float32(100 + rng.NormFloat64())
	}
	loose, _ := NewCodec(1.0 / 8).Encode(in)
	tight, _ := NewCodec(1.0 / 256).Encode(in)
	if len(loose) >= len(tight) {
		t.Errorf("loose threshold (%d B) not smaller than tight (%d B)", len(loose), len(tight))
	}
}

func TestCodecErrorBoundProperty(t *testing.T) {
	c := NewCodec(0)
	t1, _ := DefaultThresholds()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := 1 + rng.Float64()*1e4
		in := make([]float32, 777)
		for i := range in {
			in[i] = float32(base * (1 + 0.03*rng.NormFloat64()))
		}
		enc, err := c.Encode(in)
		if err != nil {
			return false
		}
		dec, err := c.Decode(enc)
		if err != nil || len(dec) != len(in) {
			return false
		}
		for i := range in {
			if in[i] == 0 {
				continue
			}
			re := math.Abs(float64(dec[i]-in[i])) / math.Abs(float64(in[i]))
			if re > t1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRatioEdgeCases(t *testing.T) {
	// A real stream for the valid-ratio rows: 256 values -> some bytes.
	c := NewCodec(0)
	enc, err := c.Encode(smoothSignal(256))
	if err != nil {
		t.Fatal(err)
	}
	enc64, err := c.Encode64(make([]float64, 128))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		got   float64
		want  float64
		exact bool
	}{
		{"empty stream", Ratio(100, nil), 0, true},
		{"zero count", Ratio(0, enc), 0, true},
		{"negative count", Ratio(-7, enc), 0, true},
		{"zero count empty stream", Ratio(0, nil), 0, true},
		{"valid", Ratio(256, enc), float64(4*256) / float64(len(enc)), true},
		{"64 empty stream", Ratio64(100, nil), 0, true},
		{"64 zero count", Ratio64(0, enc64), 0, true},
		{"64 negative count", Ratio64(-1, enc64), 0, true},
		{"64 valid", Ratio64(128, enc64), float64(8*128) / float64(len(enc64)), true},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, tc.got, tc.want)
		}
		if math.IsInf(tc.got, 0) || math.IsNaN(tc.got) || tc.got < 0 {
			t.Errorf("%s: non-finite or negative ratio %v", tc.name, tc.got)
		}
	}
}
