module avr

go 1.22
