package avr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smooth64(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1e6 + 300*math.Sin(float64(i)/60)
	}
	return out
}

func TestCodec64RoundTripSmooth(t *testing.T) {
	c := NewCodec(0)
	in := smooth64(4096)
	enc, err := c.Encode64(in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode64(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(in) {
		t.Fatalf("decoded %d values", len(dec))
	}
	t1, _ := DefaultThresholds()
	for i := range in {
		re := math.Abs(dec[i]-in[i]) / math.Abs(in[i])
		if re > t1 {
			t.Fatalf("value %d error %v beyond T1", i, re)
		}
	}
	if r := Ratio64(len(in), enc); r < 4 {
		t.Errorf("ratio = %.1f, want > 4", r)
	}
}

func TestCodec64RawFallbackExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := make([]float64, 1024)
	for i := range in {
		in[i] = rng.NormFloat64() * math.Exp2(float64(rng.Intn(200)-100))
	}
	c := NewCodec(0)
	enc, err := c.Encode64(in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode64(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if dec[i] != in[i] {
			t.Fatalf("raw double %d altered", i)
		}
	}
}

func TestCodec64WithOutliers(t *testing.T) {
	in := smooth64(512)
	in[40] = -12345.678
	in[300] = 9e12
	c := NewCodec(0)
	enc, err := c.Encode64(in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode64(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec[40] != -12345.678 || dec[300] != 9e12 {
		t.Errorf("outliers not exact: %v, %v", dec[40], dec[300])
	}
}

func TestCodec64PartialBlock(t *testing.T) {
	c := NewCodec(0)
	in := smooth64(200) // 1 full block + 72 values
	enc, _ := c.Encode64(in)
	dec, err := c.Decode64(enc)
	if err != nil || len(dec) != 200 {
		t.Fatalf("decoded %d, err %v", len(dec), err)
	}
}

func TestCodec64RejectsGarbage(t *testing.T) {
	c := NewCodec(0)
	if _, err := c.Decode64([]byte("AVR1....")); err == nil {
		t.Error("32-bit magic accepted by 64-bit decoder")
	}
	enc, _ := c.Encode64(smooth64(256))
	if _, err := c.Decode64(enc[:len(enc)-4]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestCodec64Property(t *testing.T) {
	c := NewCodec(0)
	t1, _ := DefaultThresholds()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := 1 + rng.Float64()*1e9
		in := make([]float64, 300)
		for i := range in {
			in[i] = base * (1 + 0.02*rng.NormFloat64())
		}
		enc, err := c.Encode64(in)
		if err != nil {
			return false
		}
		dec, err := c.Decode64(enc)
		if err != nil || len(dec) != len(in) {
			return false
		}
		for i := range in {
			if math.Abs(dec[i]-in[i])/math.Abs(in[i]) > t1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
