package avr

import (
	"strings"
	"testing"
)

func TestBenchmarksList(t *testing.T) {
	b := Benchmarks()
	if len(b) != 7 {
		t.Fatalf("benchmarks = %v, want 7 entries", b)
	}
	if b[0] != "heat" || b[6] != "wrf" {
		t.Errorf("unexpected order: %v", b)
	}
}

func TestRunBenchmarkSmoke(t *testing.T) {
	r, err := RunBenchmark("heat", AVR, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Instructions == 0 {
		t.Errorf("empty result: %+v", r)
	}
	if r.CompressionRatio <= 1 {
		t.Errorf("heat compression ratio = %v, want > 1", r.CompressionRatio)
	}
	if r.AVRStats == nil {
		t.Error("AVR run missing AVR stats")
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	if _, err := RunBenchmark("nope", AVR, ScaleSmall); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestAVRFasterThanBaselineOnHeat(t *testing.T) {
	base, err := RunBenchmark("heat", Baseline, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	avr, err := RunBenchmark("heat", AVR, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if avr.Cycles >= base.Cycles {
		t.Errorf("AVR (%d cycles) not faster than baseline (%d)", avr.Cycles, base.Cycles)
	}
	if avr.DRAM.TotalBytes() >= base.DRAM.TotalBytes() {
		t.Errorf("AVR traffic (%d) not below baseline (%d)",
			avr.DRAM.TotalBytes(), base.DRAM.TotalBytes())
	}
}

func TestOutputErrorBounded(t *testing.T) {
	e, err := OutputError("heat", AVR, ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if e < 0 || e > 0.05 {
		t.Errorf("heat AVR output error = %v, want small", e)
	}
}

func TestExperimentByID(t *testing.T) {
	title, text, csv, err := Experiment("overhead", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(title, "overhead") && !strings.Contains(title, "4.2") {
		t.Errorf("title = %q", title)
	}
	if !strings.Contains(text, "CMT") || !strings.Contains(csv, ",") {
		t.Error("report content missing")
	}
}

func TestExperimentUnknown(t *testing.T) {
	if _, _, _, err := Experiment("fig99", ScaleSmall); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 16 {
		t.Errorf("ids = %v", ids)
	}
}

func TestValidate(t *testing.T) {
	for _, d := range []Design{Baseline, Doppelganger, Truncate, ZeroAVR, AVR} {
		if err := Validate(d); err != nil {
			t.Errorf("valid design rejected: %v", err)
		}
	}
	if err := Validate(Design(99)); err == nil {
		t.Error("invalid design accepted")
	}
}

func TestDefaultThresholds(t *testing.T) {
	t1, t2 := DefaultThresholds()
	if t1 != 2*t2 {
		t.Errorf("T1 (%v) != 2·T2 (%v)", t1, t2)
	}
}
