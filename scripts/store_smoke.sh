#!/usr/bin/env bash
# scripts/store_smoke.sh — end-to-end gate for the persistent block
# store, in three acts:
#
#   1. offline: avrstore pack → verify (every value within t1, lossless
#      blocks bit-exact against regenerated ground truth)
#   2. crash drill: chop bytes off the newest segment (torn-tail
#      simulation), then verify -allow-partial — recovery must keep
#      every surviving value within bound; compaction must still work
#   3. serving: avrd -store-dir under avrload -mode store, then kill -9
#      mid-traffic and reopen — the store must recover and verify
#
# A CI gate, not a benchmark — see EXPERIMENTS.md for the recorded
# store-mode load baseline.
#
# Usage: scripts/store_smoke.sh [duration] [concurrency]
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${1:-2s}"
CONC="${2:-4}"

TMP="$(mktemp -d)"
AVRD_PID=""
cleanup() {
    [ -n "$AVRD_PID" ] && kill -9 "$AVRD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/avrd" ./cmd/avrd
go build -o "$TMP/avrload" ./cmd/avrload
go build -o "$TMP/avrstore" ./cmd/avrstore

# --- Act 1: offline pack + verify ------------------------------------
STORE="$TMP/store"
"$TMP/avrstore" pack -dir "$STORE" -keys 6 -values 20000 -dist mixed-all
"$TMP/avrstore" verify -dir "$STORE"
"$TMP/avrstore" inspect -dir "$STORE" | grep -q '"achieved_ratio"'
# Cross-check the compressed-domain query engine against the same
# manifest ground truth verify just used value-by-value: aggregates
# within their error bounds, filter brackets never missing, downsample
# within per-point bounds.
"$TMP/avrstore" query -dir "$STORE" -check
# And a single ad-hoc query must report its traffic accounting.
"$TMP/avrstore" query -dir "$STORE" -key pack-0000 | grep -q '"bytes_touched"'

# --- Act 2: torn-tail crash drill ------------------------------------
# Chop 37 bytes off the newest segment: a torn frame the recovery scan
# must truncate, losing at most the tail blocks of the last put.
LAST_SEG="$(ls "$STORE"/seg-*.avrseg | sort | tail -1)"
SIZE="$(wc -c < "$LAST_SEG")"
truncate -s "$((SIZE - 37))" "$LAST_SEG"
echo "tore $LAST_SEG to $((SIZE - 37)) bytes"
"$TMP/avrstore" verify -dir "$STORE" -allow-partial
"$TMP/avrstore" compact -dir "$STORE"
"$TMP/avrstore" verify -dir "$STORE" -allow-partial

# --- Act 3: serving + kill -9 ----------------------------------------
SERVED="$TMP/served"
# Small segments so the short run exercises segment roll and gives the
# background compactor (and the post-kill offline compact) real victims.
"$TMP/avrd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" \
    -store-dir "$SERVED" -store-segment-bytes $((1 << 20)) \
    -store-compact-interval 250ms &
AVRD_PID=$!

for _ in $(seq 1 100); do
    [ -s "$TMP/addr" ] && break
    sleep 0.1
done
[ -s "$TMP/addr" ] || { echo "avrd never wrote its address"; exit 1; }
ADDR="$(cat "$TMP/addr")"
echo "avrd up on $ADDR with store $SERVED"

# Verified store-mode load: every get within t1 of its put.
"$TMP/avrload" -addr "$ADDR" -mode store -c "$CONC" -duration "$DURATION" \
    -values 20000 -dist heat

# Verified query-mode load: every compressed-domain answer within its
# reported error bound, and pure-AVR aggregates inside the 1/8 traffic
# budget (wave compresses outlier-free at the default t1).
"$TMP/avrload" -addr "$ADDR" -mode query -c "$CONC" -duration "$DURATION" \
    -values 20000 -dist wave -maxtraffic 0.125

# Fetch once, grep the captured body: `curl | grep -q` races — grep
# exits at the first match and curl fails with a pipe write error.
STATS="$(curl -sf "http://$ADDR/v1/store/stats")"
grep -q '"achieved_ratio"' <<<"$STATS"
grep -q '"query_latency"' <<<"$STATS"

# kill -9 mid-put traffic: no drain, no fsync — the next open must
# recover whatever the disk holds, torn tail included.
( "$TMP/avrload" -addr "$ADDR" -mode store -c "$CONC" -duration 5s \
    -values 20000 -dist wave >/dev/null 2>&1 || true ) &
LOAD_PID=$!
sleep 1
kill -9 "$AVRD_PID"
AVRD_PID=""
wait "$LOAD_PID" 2>/dev/null || true

# Reopen after the hard kill: recovery must succeed and the store must
# still serve and compact. (The load keys have no manifest, so inspect
# and compact are the verification here; avrload already bound-checked
# every get it made.)
"$TMP/avrstore" inspect -dir "$SERVED" | grep -q '"keys"'
"$TMP/avrstore" compact -dir "$SERVED"
echo "store smoke OK (pack/verify, torn-tail recovery, kill -9 reopen)"
