#!/usr/bin/env bash
# scripts/cluster_smoke.sh — end-to-end gate for the sharded tier:
# three avrd shards behind one avrrouter, replication 2, read-any.
#
#   1. pack a manifest through the router, verify through the router
#      (every key present in the fanned-out listing, every value within
#      the manifest t1 whichever replica serves it)
#   2. kill -9 one shard mid-cluster-load — avrload must finish with
#      zero out-of-bound reads (failovers are availability noise; a
#      single corrupt get fails the script)
#   3. with the shard still dead, verify the full manifest again: every
#      key must survive on its other replica
#   4. restart the shard and watch the prober eject/readmit counters,
#      then promlint the router's /metrics exposition
#
# A CI gate, not a benchmark — EXPERIMENTS.md records the 3-node vs
# single-node throughput baseline.
#
# Usage: scripts/cluster_smoke.sh [duration] [concurrency]
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${1:-4s}"
CONC="${2:-8}"

TMP="$(mktemp -d)"
PIDS=()
cleanup() {
    for p in "${PIDS[@]}"; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/avrd" ./cmd/avrd
go build -o "$TMP/avrrouter" ./cmd/avrrouter
go build -o "$TMP/avrload" ./cmd/avrload
go build -o "$TMP/avrstore" ./cmd/avrstore
go build -o "$TMP/promlint" ./cmd/promlint

wait_addr() { # file
    for _ in $(seq 1 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "no address in $1"; exit 1
}

start_node() { # index
    "$TMP/avrd" -addr 127.0.0.1:0 -addr-file "$TMP/node$1.addr" \
        -store-dir "$TMP/store$1" &
    eval "NODE$1_PID=$!"
    PIDS+=("$!")
}

for i in 0 1 2; do start_node "$i"; done
for i in 0 1 2; do wait_addr "$TMP/node$i.addr"; done

cat > "$TMP/topology.json" <<EOF
{
  "vnodes": 64,
  "replication": 2,
  "nodes": [
    {"name": "n0", "addr": "$(cat "$TMP/node0.addr")"},
    {"name": "n1", "addr": "$(cat "$TMP/node1.addr")"},
    {"name": "n2", "addr": "$(cat "$TMP/node2.addr")"}
  ]
}
EOF

"$TMP/avrrouter" -addr 127.0.0.1:0 -addr-file "$TMP/router.addr" \
    -topology "$TMP/topology.json" -probe-interval 200ms \
    -cache-bytes $((32<<20)) &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
wait_addr "$TMP/router.addr"
ROUTER="$(cat "$TMP/router.addr")"
echo "router up on $ROUTER over nodes $(cat "$TMP"/node{0,1,2}.addr | tr '\n' ' ')"

curl -sf "http://$ROUTER/healthz" > /dev/null
curl -sf "http://$ROUTER/readyz" > /dev/null

# --- Act 1: manifest pack + verify through the router -----------------
"$TMP/avrstore" pack -addr "$ROUTER" -manifest "$TMP/manifest.json" \
    -keys 24 -values 8000 -dist mixed-all
"$TMP/avrstore" verify -addr "$ROUTER" -manifest "$TMP/manifest.json"

# --- Act 2: kill -9 one shard under cluster load ----------------------
# avrload exits non-zero on a single out-of-bound read; shard-kill
# failures surface as errors/failovers, never as corruption.
"$TMP/avrload" -addr "$ROUTER" -mode cluster -c "$CONC" \
    -duration "$DURATION" -values 2000 -batch 8 &
LOAD_PID=$!
sleep 1
kill -9 "$NODE0_PID"
echo "killed shard n0 mid-load"
wait "$LOAD_PID" || { echo "cluster load saw out-of-bound reads"; exit 1; }

# --- Act 3: every manifest key must survive on its other replica ------
"$TMP/avrstore" verify -addr "$ROUTER" -manifest "$TMP/manifest.json"

# --- Act 4: eject on the dead shard, readmit after restart ------------
poll_stat() { # json_field min_value
    for _ in $(seq 1 100); do
        # Strip whitespace first: the stats JSON is indented.
        v="$(curl -sf "http://$ROUTER/v1/stats" | tr -d ' \n\t' \
            | grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2 || true)"
        [ -n "$v" ] && [ "$v" -ge "$2" ] && return 0
        sleep 0.1
    done
    echo "router stat $1 never reached $2"; exit 1
}
poll_stat node_ejects 1

# Same address as before — the topology is static, so the shard must
# come back where the ring expects it. The store dir recovers whatever
# the kill -9 left on disk.
"$TMP/avrd" -addr "$(cat "$TMP/node0.addr")" \
    -store-dir "$TMP/store0" &
PIDS+=("$!")
poll_stat node_readmits 1

# One more load run against the healed cluster.
"$TMP/avrload" -addr "$ROUTER" -mode cluster -c "$CONC" -duration 2s \
    -values 2000 -batch 8

# --- Act 5: hot re-reads through the router's response cache ----------
# avrload exits non-zero on any out-of-bound value, so a passing run
# means the cached responses are as correct as the proxied ones.
"$TMP/avrload" -addr "$ROUTER" -mode storehot -c "$CONC" -duration 2s \
    -values 2000 -hotkeys 16 -json > "$TMP/hot.json"
grep -q '"corrupt": 0' "$TMP/hot.json"
HITS="$(grep -o '"cache_hits": [0-9]*' "$TMP/hot.json" | tr -dc 0-9)"
[ -n "$HITS" ] && [ "$HITS" -gt 0 ] || { echo "router hot phase produced no cache hits"; exit 1; }
RATE="$(grep -o '"cache_hit_rate": [0-9.]*' "$TMP/hot.json" | grep -o '[0-9.]*$')"
awk -v r="${RATE:-0}" 'BEGIN{exit !(r>=0.5)}' \
    || { echo "router hot hit rate ${RATE:-0} below 0.5"; exit 1; }
echo "router hot re-read phase: $HITS cache hits (rate $RATE), all within bound"

# --- Exposition lint ---------------------------------------------------
curl -sf "http://$ROUTER/metrics" > "$TMP/metrics.txt"
"$TMP/promlint" "$TMP/metrics.txt"
grep -q '^avr_router_fanouts ' "$TMP/metrics.txt"
grep -q '^avr_cache_hits ' "$TMP/metrics.txt"

echo "cluster smoke OK (router pack/verify, kill -9 failover with zero out-of-bound reads, eject/readmit, hot cache phase)"
