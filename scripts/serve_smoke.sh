#!/usr/bin/env bash
# scripts/serve_smoke.sh — end-to-end smoke of the serving stack: build
# avrd + avrload, start the daemon on an ephemeral port, run a short
# verified load (avrload exits non-zero when no request succeeds or any
# response mismatches the direct codec), scrape /metrics through the
# strict exposition linter, check trace headers and the JSONL span
# export, then check graceful SIGTERM drain. A CI gate, not a benchmark
# — see EXPERIMENTS.md for the recorded load baseline workflow.
#
# Usage: scripts/serve_smoke.sh [duration] [concurrency]
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${1:-2s}"
CONC="${2:-8}"

TMP="$(mktemp -d)"
AVRD_PID=""
cleanup() {
    [ -n "$AVRD_PID" ] && kill "$AVRD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/avrd" ./cmd/avrd
go build -o "$TMP/avrload" ./cmd/avrload
go build -o "$TMP/promlint" ./cmd/promlint

"$TMP/avrd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" \
    -store-dir "$TMP/store" -cache-bytes $((64<<20)) \
    -trace-file "$TMP/traces.jsonl" -trace-sample 4 &
AVRD_PID=$!

for _ in $(seq 1 100); do
    [ -s "$TMP/addr" ] && break
    sleep 0.1
done
[ -s "$TMP/addr" ] || { echo "avrd never wrote its address"; exit 1; }
ADDR="$(cat "$TMP/addr")"
echo "avrd up on $ADDR"

curl -sf "http://$ADDR/healthz" > /dev/null
curl -sf "http://$ADDR/readyz" > /dev/null

"$TMP/avrload" -addr "$ADDR" -c "$CONC" -duration "$DURATION" -values 4096 -dist heat

# Hot re-read phase: the summary-first read cache must serve repeat
# reads from memory. avrload exits non-zero on any out-of-bound value,
# so reaching the hit-rate check below already proves zero corruption.
"$TMP/avrload" -addr "$ADDR" -mode storehot -c "$CONC" -duration "$DURATION" \
    -values 4096 -hotkeys 16 -json > "$TMP/hot.json"
grep -q '"corrupt": 0' "$TMP/hot.json"
HITS="$(grep -o '"cache_hits": [0-9]*' "$TMP/hot.json" | tr -dc 0-9)"
[ -n "$HITS" ] && [ "$HITS" -gt 0 ] || { echo "hot phase produced no cache hits"; exit 1; }
RATE="$(grep -o '"cache_hit_rate": [0-9.]*' "$TMP/hot.json" | grep -o '[0-9.]*$')"
awk -v r="${RATE:-0}" 'BEGIN{exit !(r>=0.5)}' \
    || { echo "hot phase hit rate ${RATE:-0} below 0.5"; exit 1; }
echo "hot re-read phase: $HITS cache hits (rate $RATE), all within bound"

# expvar counters must be visible on the service's own stats endpoint,
# including the per-stage tracing breakdown.
# Fetch then grep the captured body: `curl | grep -q` races — grep
# exits at the first match and curl fails with a pipe write error.
STATS="$(curl -sf "http://$ADDR/v1/stats")"
grep -q '"encodes"' <<<"$STATS"
grep -q '"stages"' <<<"$STATS"
grep -q '"segwrite"' <<<"$STATS"

# Every response must carry its trace id and per-stage durations.
head -c 4096 /dev/zero > "$TMP/zeros.f32le"
curl -sf -D "$TMP/hdrs" -o /dev/null \
    --data-binary @"$TMP/zeros.f32le" "http://$ADDR/v1/encode"
grep -qi '^x-avr-trace:' "$TMP/hdrs"
grep -qi '^x-avr-stage-encode:' "$TMP/hdrs"

# The Prometheus exposition must lint clean and carry the avr.*
# counters plus the per-stage histograms.
curl -sf "http://$ADDR/metrics" > "$TMP/metrics.txt"
"$TMP/promlint" "$TMP/metrics.txt"
grep -q '^avr_server_requests ' "$TMP/metrics.txt"
grep -q '^avr_trace_stage_queue_bucket' "$TMP/metrics.txt"
grep -q '^avr_cache_hits ' "$TMP/metrics.txt"

# Sampled spans must have landed in the JSONL export as parseable lines.
[ -s "$TMP/traces.jsonl" ] || { echo "trace export file empty"; exit 1; }
grep -q '"op":' "$TMP/traces.jsonl"

# Graceful drain: SIGTERM must exit 0 after completing in-flight work.
kill -TERM "$AVRD_PID"
wait "$AVRD_PID"
AVRD_PID=""
echo "serve smoke OK (graceful drain clean)"
