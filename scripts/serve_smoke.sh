#!/usr/bin/env bash
# scripts/serve_smoke.sh — end-to-end smoke of the serving stack: build
# avrd + avrload, start the daemon on an ephemeral port, run a short
# verified load (avrload exits non-zero when no request succeeds or any
# response mismatches the direct codec), then check graceful SIGTERM
# drain. A CI gate, not a benchmark — see EXPERIMENTS.md for the
# recorded load baseline workflow.
#
# Usage: scripts/serve_smoke.sh [duration] [concurrency]
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${1:-2s}"
CONC="${2:-8}"

TMP="$(mktemp -d)"
AVRD_PID=""
cleanup() {
    [ -n "$AVRD_PID" ] && kill "$AVRD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/avrd" ./cmd/avrd
go build -o "$TMP/avrload" ./cmd/avrload

"$TMP/avrd" -addr 127.0.0.1:0 -addr-file "$TMP/addr" &
AVRD_PID=$!

for _ in $(seq 1 100); do
    [ -s "$TMP/addr" ] && break
    sleep 0.1
done
[ -s "$TMP/addr" ] || { echo "avrd never wrote its address"; exit 1; }
ADDR="$(cat "$TMP/addr")"
echo "avrd up on $ADDR"

curl -sf "http://$ADDR/healthz" > /dev/null
curl -sf "http://$ADDR/readyz" > /dev/null

"$TMP/avrload" -addr "$ADDR" -c "$CONC" -duration "$DURATION" -values 4096 -dist heat

# expvar counters must be visible on the service's own stats endpoint.
# Fetch then grep the captured body: `curl | grep -q` races — grep
# exits at the first match and curl fails with a pipe write error.
grep -q '"encodes"' <<<"$(curl -sf "http://$ADDR/v1/stats")"

# Graceful drain: SIGTERM must exit 0 after completing in-flight work.
kill -TERM "$AVRD_PID"
wait "$AVRD_PID"
AVRD_PID=""
echo "serve smoke OK (graceful drain clean)"
