#!/usr/bin/env bash
# scripts/bench.sh — run the simulator benchmark suite and emit
# BENCH_sim.json (ns/op, B/op, allocs/op and custom metrics per
# benchmark), then enforce the zero-allocation gate on the hot-path
# benchmarks.
#
# Usage: scripts/bench.sh [outfile]            (default BENCH_sim.json)
#   BENCHTIME=1s|100x   go test -benchtime value (default 1s; CI smoke
#                       uses a small fixed count for speed)
#   BENCHFILTER=regex   override the benchmark selection
#
# Compare two runs over time with benchstat:
#   go test -run '^$' -bench ... -count 10 > old.txt   (repeat as new.txt)
#   benchstat old.txt new.txt
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sim.json}"
BENCHTIME="${BENCHTIME:-1s}"
BENCHFILTER="${BENCHFILTER:-CacheAccess|CacheFill|CMTLookup|Compress$|CompressNoisy|Decompress$|DRAMAccess|SystemAccess|PresetSmallStep|Recorder|Histogram}"

PKGS="./internal/cache ./internal/cmt ./internal/compress ./internal/dram ./internal/obs ./internal/sim ./internal/workloads"

# Hot-path benchmarks that must report 0 allocs/op: every demand access
# in the simulator goes through these paths, and a single allocation per
# access dominates run time at scale. The obs instrumentation is held to
# the same bar both disabled (nil receiver) and enabled (preallocated
# ring/buckets).
GATED="BenchmarkCacheAccess BenchmarkCacheFill BenchmarkCMTLookup BenchmarkCMTLookupMiss BenchmarkDRAMAccess BenchmarkDRAMAccessRandom BenchmarkSystemAccess BenchmarkSystemAccessAVR BenchmarkRecorderDisabled BenchmarkRecorderRecord BenchmarkHistogramDisabled BenchmarkHistogramObserve"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench '$BENCHFILTER' -benchtime $BENCHTIME =="
go test -run '^$' -bench "$BENCHFILTER" -benchmem -benchtime "$BENCHTIME" $PKGS | tee "$RAW"

# Render the benchmark lines into JSON.
awk '
BEGIN {
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = "null"; bop = "null"; aop = "null"; extra = ""
    for (i = 3; i < NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op") ns = v
        else if (u == "B/op") bop = v
        else if (u == "allocs/op") aop = v
        else extra = extra sprintf("%s\"%s\": %s", (extra == "" ? "" : ", "), u, v)
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, iters, ns, bop, aop)
    if (extra != "") line = line ", " extra
    line = line "}"
    bench[n++] = line
    nsof[name] = ns
}
END {
    printf "{\n  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n - 1 ? "," : "")
    printf "  ],\n"
    printf "  \"derived\": {"
    if (("BenchmarkCMTLookup" in nsof) && ("BenchmarkCMTLookupMapBacked" in nsof) && nsof["BenchmarkCMTLookup"] + 0 > 0)
        printf "\"cmt_lookup_speedup_vs_map\": %.2f", nsof["BenchmarkCMTLookupMapBacked"] / nsof["BenchmarkCMTLookup"]
    printf "}\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"

# Zero-allocation gate.
fail=0
for b in $GATED; do
    line="$(grep -E "^$b(-[0-9]+)? " "$RAW" | head -1 || true)"
    if [ -z "$line" ]; then
        echo "ALLOC GATE: $b did not run (filter '$BENCHFILTER')" >&2
        fail=1
        continue
    fi
    allocs="$(echo "$line" | awk '{for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i}')"
    if [ "$allocs" != "0" ]; then
        echo "ALLOC GATE: $b reports $allocs allocs/op, want 0" >&2
        fail=1
    else
        echo "alloc gate ok: $b (0 allocs/op)"
    fi
done
exit $fail
