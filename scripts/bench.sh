#!/usr/bin/env bash
# scripts/bench.sh — run the benchmark suites and emit JSON results
# (ns/op, B/op, allocs/op and custom metrics per benchmark), then
# enforce the zero-allocation gates and the store throughput gates
# (absolute Put32 floor + -20% regression bar vs the committed
# BENCH_store.json; PERFGATE=0 skips the throughput bars).
#
# Two passes:
#   1. simulator suite  -> BENCH_sim.json    (hot-path alloc gate)
#   2. store + serving  -> BENCH_store.json  (pool handoff alloc gate)
#
# Usage: scripts/bench.sh [sim-outfile] [store-outfile]
#   (defaults BENCH_sim.json BENCH_store.json)
#   BENCHTIME=1s|100x   go test -benchtime value (default 1s; CI smoke
#                       uses a small fixed count for speed)
#   BENCHFILTER=regex   override the simulator benchmark selection
#   STOREFILTER=regex   override the store benchmark selection
#
# Compare two runs over time with benchstat:
#   go test -run '^$' -bench ... -count 10 > old.txt   (repeat as new.txt)
#   benchstat old.txt new.txt
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sim.json}"
STORE_OUT="${2:-BENCH_store.json}"
BENCHTIME="${BENCHTIME:-1s}"
BENCHFILTER="${BENCHFILTER:-CacheAccess|CacheFill|CMTLookup|Compress$|CompressNoisy|Decompress$|DRAMAccess|SystemAccess|PresetSmallStep|Recorder|Histogram}"
STOREFILTER="${STOREFILTER:-StorePut|StoreGet|StoreScan|StoreCompact|StoreQuery|CodecPool|Traced|SpanPool|RingOwners|RouterPlan|CacheHitGet|CacheLookup}"

PKGS="./internal/cache ./internal/cmt ./internal/compress ./internal/dram ./internal/obs ./internal/sim ./internal/workloads"
STORE_PKGS="./internal/store ./internal/server ./internal/trace ./internal/cluster"

# Hot-path benchmarks that must report 0 allocs/op: every demand access
# in the simulator goes through these paths, and a single allocation per
# access dominates run time at scale. The obs instrumentation is held to
# the same bar both disabled (nil receiver) and enabled (preallocated
# ring/buckets).
GATED="BenchmarkCacheAccess BenchmarkCacheFill BenchmarkCMTLookup BenchmarkCMTLookupMiss BenchmarkDRAMAccess BenchmarkDRAMAccessRandom BenchmarkSystemAccess BenchmarkSystemAccessAVR BenchmarkRecorderDisabled BenchmarkRecorderRecord BenchmarkHistogramDisabled BenchmarkHistogramObserve"
# Serving-path gate: the codec-pool handoff sits on every request, and
# the store put/get hot paths are allocation-free by contract — pooled
# scratch on the write side, caller-supplied destinations (Get*Into) on
# the read side. Compressed-domain aggregate/filter queries share the
# bar (pooled scratch, targeted preads); downsample is exempt — its
# result slices are the query's output. The Traced* twins hold the
# same paths to the same bar with a live span, tracer and JSONL sink
# at the default export sampling — per-stage attribution must be free
# enough to leave on (and BenchmarkSpanPool gates the span lifecycle
# itself). The router hot path — ring owner lookup plus batch fan-out
# planning — is held to the same bar: both sit on every proxied
# request, so the router adds network hops but no allocator pressure.
# The read-cache hit path and the bare cache lookup join the gate: a
# cache hit that allocates would trade the disk read it saves for GC
# pressure on every hot read.
STORE_GATED="BenchmarkCodecPoolGetPut BenchmarkStorePut32 BenchmarkStorePut32Noise BenchmarkStorePut64 BenchmarkStoreGet32 BenchmarkStoreGet64 BenchmarkStoreQueryAggregate32 BenchmarkStoreQueryAggregate64 BenchmarkStoreQueryFilter32 BenchmarkTracedPut32 BenchmarkTracedGet32 BenchmarkTracedQueryAggregate BenchmarkSpanPool BenchmarkRingOwners BenchmarkRouterPlanMget BenchmarkCacheHitGet32 BenchmarkCacheLookup"

RAW="$(mktemp)"
RAW_STORE="$(mktemp)"
trap 'rm -f "$RAW" "$RAW_STORE"' EXIT

# render_json RAWFILE > out.json — benchmark lines to JSON.
render_json() {
    awk '
    BEGIN {
        n = 0
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        iters = $2
        ns = "null"; bop = "null"; aop = "null"; extra = ""
        for (i = 3; i < NF; i += 2) {
            v = $i; u = $(i + 1)
            if (u == "ns/op") ns = v
            else if (u == "B/op") bop = v
            else if (u == "allocs/op") aop = v
            else extra = extra sprintf("%s\"%s\": %s", (extra == "" ? "" : ", "), u, v)
        }
        line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, iters, ns, bop, aop)
        if (extra != "") line = line ", " extra
        line = line "}"
        bench[n++] = line
        nsof[name] = ns
    }
    END {
        printf "{\n  \"benchmarks\": [\n"
        for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n - 1 ? "," : "")
        printf "  ],\n"
        printf "  \"derived\": {"
        if (("BenchmarkCMTLookup" in nsof) && ("BenchmarkCMTLookupMapBacked" in nsof) && nsof["BenchmarkCMTLookup"] + 0 > 0)
            printf "\"cmt_lookup_speedup_vs_map\": %.2f", nsof["BenchmarkCMTLookupMapBacked"] / nsof["BenchmarkCMTLookup"]
        printf "}\n}\n"
    }' "$1"
}

# mbs_raw RAWFILE BENCH — MB/s from a raw benchmark output line.
mbs_raw() {
    grep -E "^$2(-[0-9]+)? " "$1" | head -1 |
        awk '{for (i = 3; i < NF; i++) if ($(i + 1) == "MB/s") print $i}'
}

# mbs_json JSONFILE BENCH — MB/s recorded for BENCH in a results file.
mbs_json() {
    sed -n "s/.*\"name\": \"$2\".*\"MB\/s\": \([0-9.]*\).*/\1/p" "$1" | head -1
}

# perf_gate RAWFILE BASELINE_JSON — throughput bars on the store hot
# paths: an absolute floor on the headline put benchmark and a -20%
# regression bar against the committed baseline for every put/get
# benchmark that has one. PERFGATE=0 skips (loaded machines, debug).
# StorePut32Noise is alloc-gated but not throughput-gated: the lossless
# fallback writes 4× the bytes of the compressed path, so its MB/s
# measures disk writeback (3× run-to-run swings), not the codec.
PUT32_FLOOR="${PUT32_FLOOR:-550}"
perf_gate() {
    local raw="$1" base="$2" fail=0 b cur old
    cur="$(mbs_raw "$raw" BenchmarkStorePut32)"
    if [ -z "$cur" ]; then
        echo "PERF GATE: BenchmarkStorePut32 reported no MB/s" >&2
        return 1
    fi
    if awk -v v="$cur" -v f="$PUT32_FLOOR" 'BEGIN { exit !(v < f) }'; then
        echo "PERF GATE: BenchmarkStorePut32 at $cur MB/s, floor $PUT32_FLOOR MB/s" >&2
        fail=1
    else
        echo "perf gate ok: BenchmarkStorePut32 $cur MB/s (floor $PUT32_FLOOR)"
    fi
    # The whole point of the read cache: a hit must beat the disk read
    # path by at least 5× in reconstruction throughput (same machine,
    # same run, so machine speed cancels out).
    local hit disk
    hit="$(mbs_raw "$raw" BenchmarkCacheHitGet32)"
    disk="$(mbs_raw "$raw" BenchmarkStoreGet32)"
    if [ -n "$hit" ] && [ -n "$disk" ]; then
        if awk -v h="$hit" -v d="$disk" 'BEGIN { exit !(h < 5 * d) }'; then
            echo "PERF GATE: CacheHitGet32 at $hit MB/s is under 5x StoreGet32 ($disk MB/s)" >&2
            fail=1
        else
            echo "perf gate ok: BenchmarkCacheHitGet32 $hit MB/s >= 5x BenchmarkStoreGet32 $disk MB/s"
        fi
    fi
    [ -f "$base" ] || return $fail
    for b in BenchmarkStorePut32 BenchmarkStorePut64 BenchmarkStoreGet32 BenchmarkStoreGet64; do
        cur="$(mbs_raw "$raw" "$b")"
        old="$(mbs_json "$base" "$b")"
        { [ -n "$cur" ] && [ -n "$old" ]; } || continue
        if awk -v c="$cur" -v o="$old" 'BEGIN { exit !(c < 0.8 * o) }'; then
            echo "PERF GATE: $b regressed to $cur MB/s (baseline $old MB/s, -20% bar)" >&2
            fail=1
        else
            echo "perf gate ok: $b $cur MB/s (baseline $old)"
        fi
    done
    return $fail
}

# alloc_gate RAWFILE FILTER BENCH... — every named benchmark must have
# run and reported 0 allocs/op.
alloc_gate() {
    local raw="$1" filter="$2"
    shift 2
    local fail=0 b line allocs
    for b in "$@"; do
        line="$(grep -E "^$b(-[0-9]+)? " "$raw" | head -1 || true)"
        if [ -z "$line" ]; then
            echo "ALLOC GATE: $b did not run (filter '$filter')" >&2
            fail=1
            continue
        fi
        allocs="$(echo "$line" | awk '{for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i}')"
        if [ "$allocs" != "0" ]; then
            echo "ALLOC GATE: $b reports $allocs allocs/op, want 0" >&2
            fail=1
        else
            echo "alloc gate ok: $b (0 allocs/op)"
        fi
    done
    return $fail
}

echo "== go test -bench '$BENCHFILTER' -benchtime $BENCHTIME =="
go test -run '^$' -bench "$BENCHFILTER" -benchmem -benchtime "$BENCHTIME" $PKGS | tee "$RAW"
render_json "$RAW" > "$OUT"
echo "wrote $OUT"

echo "== go test -bench '$STOREFILTER' -benchtime $BENCHTIME =="
# Snapshot the committed baseline before overwriting it, so the
# regression gate compares against what the repo last recorded.
BASELINE="$(mktemp)"
trap 'rm -f "$RAW" "$RAW_STORE" "$BASELINE"' EXIT
if [ -f "$STORE_OUT" ]; then cp "$STORE_OUT" "$BASELINE"; else : > "$BASELINE"; fi
go test -run '^$' -bench "$STOREFILTER" -benchmem -benchtime "$BENCHTIME" $STORE_PKGS | tee "$RAW_STORE"
render_json "$RAW_STORE" > "$STORE_OUT"
echo "wrote $STORE_OUT"

fail=0
alloc_gate "$RAW" "$BENCHFILTER" $GATED || fail=1
alloc_gate "$RAW_STORE" "$STOREFILTER" $STORE_GATED || fail=1
if [ "${PERFGATE:-1}" != "0" ]; then
    perf_gate "$RAW_STORE" "$BASELINE" || fail=1
fi
exit $fail
