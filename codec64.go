package avr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"avr/internal/compress"
)

// Encode64 compresses float64 data with the 64-bit extension of the AVR
// scheme (128 doubles per block, 8-value summaries, 1D reconstruction).
//
// Wire format:
//
//	magic "AVR8" | uint32 value count | per-block records
//	record: 1 header byte (bit 7 = compressed, bits 0..3 = lines) |
//	        2 bias bytes (little-endian int16) |
//	        payload (summary [+ bitmap + outliers], or 1024 B raw)
func (c *Codec) Encode64(vals []float64) ([]byte, error) {
	out := make([]byte, 0, len(vals)*2)
	out = append(out, codec64Magic[:]...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(vals)))
	out = append(out, n[:]...)

	var blk [compress.BlockValues64]uint64
	for off := 0; off < len(vals); off += compress.BlockValues64 {
		for i := 0; i < compress.BlockValues64; i++ {
			j := off + i
			if j >= len(vals) {
				j = len(vals) - 1
			}
			blk[i] = math.Float64bits(vals[j])
		}
		res := c.comp.Compress64(&blk)
		if res.OK {
			hdr := byte(0x80) | byte(res.SizeLines)
			out = append(out, hdr)
			out = binary.LittleEndian.AppendUint16(out, uint16(res.Bias))
			payload := make([]byte, res.SizeLines*compress.LineBytes)
			for i, v := range res.Summary {
				binary.LittleEndian.PutUint64(payload[8*i:], uint64(v))
			}
			if len(res.Outliers) > 0 {
				copy(payload[compress.LineBytes:], res.Bitmap[:])
				p := compress.LineBytes + compress.BitmapBytes64
				for _, o := range res.Outliers {
					binary.LittleEndian.PutUint64(payload[p:], o)
					p += 8
				}
			}
			out = append(out, payload...)
		} else {
			out = append(out, 0, 0, 0)
			var raw [compress.BlockBytes]byte
			for i, v := range blk {
				binary.LittleEndian.PutUint64(raw[8*i:], v)
			}
			out = append(out, raw[:]...)
		}
	}
	return out, nil
}

var codec64Magic = [4]byte{'A', 'V', 'R', '8'}

// Decode64 reconstructs the approximate doubles from an Encode64 stream.
func (c *Codec) Decode64(data []byte) ([]float64, error) {
	if len(data) < 8 || [4]byte(data[:4]) != codec64Magic {
		return nil, errors.New("avr: bad codec64 magic")
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	// Length-header allocation-bomb guard, mirroring Decode: a block
	// record covering 128 doubles is at least 3 header bytes plus one
	// cacheline of payload.
	minRecord := 3 + compress.LineBytes
	blocks := (count + compress.BlockValues64 - 1) / compress.BlockValues64
	if len(data) < blocks*minRecord {
		return nil, errTruncated
	}
	out := make([]float64, 0, count)
	for len(out) < count {
		if len(data) < 3 {
			return nil, errTruncated
		}
		hdr := data[0]
		bias := int16(binary.LittleEndian.Uint16(data[1:]))
		data = data[3:]
		var vals [compress.BlockValues64]uint64
		if hdr&0x80 != 0 {
			size := int(hdr & 0x0F)
			if size < 1 || size > compress.MaxCompressedLines {
				return nil, fmt.Errorf("avr: bad block size %d", size)
			}
			if len(data) < size*compress.LineBytes {
				return nil, errTruncated
			}
			var summary [compress.SummaryValues64]int64
			for i := range summary {
				summary[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
			}
			var bm *[compress.BitmapBytes64]byte
			var outliers []uint64
			if size > 1 {
				var b [compress.BitmapBytes64]byte
				copy(b[:], data[compress.LineBytes:])
				bm = &b
				k := 0
				for _, x := range b {
					for ; x != 0; x &= x - 1 {
						k++
					}
				}
				if compress.CompressedLines64(k) != size {
					return nil, errors.New("avr: codec64 bitmap inconsistent with size")
				}
				p := compress.LineBytes + compress.BitmapBytes64
				outliers = make([]uint64, k)
				for i := range outliers {
					outliers[i] = binary.LittleEndian.Uint64(data[p:])
					p += 8
				}
			}
			data = data[size*compress.LineBytes:]
			vals = compress.Decompress64(&summary, bm, outliers, bias)
		} else {
			if len(data) < compress.BlockBytes {
				return nil, errTruncated
			}
			for i := range vals {
				vals[i] = binary.LittleEndian.Uint64(data[8*i:])
			}
			data = data[compress.BlockBytes:]
		}
		for i := 0; i < compress.BlockValues64 && len(out) < count; i++ {
			out = append(out, math.Float64frombits(vals[i]))
		}
	}
	return out, nil
}

// Ratio64 reports the compression ratio of an Encode64 stream. A
// non-positive value count or an empty stream yields 0, never ±Inf or a
// negative ratio.
func Ratio64(valueCount int, encoded []byte) float64 {
	if valueCount <= 0 || len(encoded) == 0 {
		return 0
	}
	return float64(8*valueCount) / float64(len(encoded))
}
