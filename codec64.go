package avr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"slices"

	"avr/internal/block"
	"avr/internal/compress"
)

// Encode64 compresses float64 data with the 64-bit extension of the AVR
// scheme (128 doubles per block, 8-value summaries, 1D reconstruction).
//
// Wire format:
//
//	magic "AVR8" | uint32 value count | per-block records
//	record: 1 header byte (bit 7 = compressed, bits 0..3 = lines) |
//	        2 bias bytes (little-endian int16) |
//	        payload (summary [+ bitmap + outliers], or 1024 B raw)
func (c *Codec) Encode64(vals []float64) ([]byte, error) {
	return c.Encode64To(make([]byte, 0, 8+len(vals)*2), vals)
}

// Encode64To appends the encoded stream for vals to dst and returns the
// extended slice; with a retained buffer the encode path is
// allocation-free. The output is byte-identical to Encode64's.
func (c *Codec) Encode64To(dst []byte, vals []float64) ([]byte, error) {
	dst = append(dst, codec64Magic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vals)))

	for off := 0; off < len(vals); off += compress.BlockValues64 {
		chunk := vals[off:]
		if len(chunk) > compress.BlockValues64 {
			chunk = chunk[:compress.BlockValues64]
		}
		for i, v := range chunk {
			c.blk64[i] = math.Float64bits(v)
		}
		last := c.blk64[len(chunk)-1]
		for i := len(chunk); i < compress.BlockValues64; i++ {
			c.blk64[i] = last
		}
		res := c.comp.CompressFast64(&c.blk64)
		if res.OK {
			hdr := byte(0x80) | byte(res.SizeLines)
			dst = append(dst, hdr)
			dst = binary.LittleEndian.AppendUint16(dst, uint16(res.Bias))
			base := len(dst)
			dst = block.AppendZeros(dst, res.SizeLines*compress.LineBytes)
			payload := dst[base:]
			for i, v := range res.Summary {
				binary.LittleEndian.PutUint64(payload[8*i:], uint64(v))
			}
			if len(res.Outliers) > 0 {
				copy(payload[compress.LineBytes:], res.Bitmap[:])
				p := compress.LineBytes + compress.BitmapBytes64
				for _, o := range res.Outliers {
					binary.LittleEndian.PutUint64(payload[p:], o)
					p += 8
				}
			}
		} else {
			dst = append(dst, 0, 0, 0)
			base := len(dst)
			dst = block.AppendZeros(dst, compress.BlockBytes)
			raw := dst[base:]
			for i, v := range c.blk64 {
				binary.LittleEndian.PutUint64(raw[8*i:], v)
			}
		}
	}
	return dst, nil
}

var codec64Magic = [4]byte{'A', 'V', 'R', '8'}

var err64BitmapSize = errors.New("avr: codec64 bitmap inconsistent with size")

// Decode64 reconstructs the approximate doubles from an Encode64 stream.
func (c *Codec) Decode64(data []byte) ([]float64, error) {
	if len(data) >= 8 && [4]byte(data[:4]) == codec64Magic {
		count := int(binary.LittleEndian.Uint32(data[4:]))
		blocks := (count + compress.BlockValues64 - 1) / compress.BlockValues64
		if len(data)-8 >= blocks*(3+compress.LineBytes) {
			return c.Decode64To(make([]float64, 0, count), data)
		}
	}
	return c.Decode64To(nil, data)
}

// Decode64To appends the decoded doubles to dst and returns the extended
// slice; with a retained buffer the decode path is allocation-free. On
// error the returned slice is nil and dst's backing array holds
// unspecified partial output.
func (c *Codec) Decode64To(dst []float64, data []byte) ([]float64, error) {
	if len(data) < 8 || [4]byte(data[:4]) != codec64Magic {
		return nil, errors.New("avr: bad codec64 magic")
	}
	count := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	// Length-header allocation-bomb guard, mirroring Decode: a block
	// record covering 128 doubles is at least 3 header bytes plus one
	// cacheline of payload.
	minRecord := 3 + compress.LineBytes
	blocks := (count + compress.BlockValues64 - 1) / compress.BlockValues64
	if len(data) < blocks*minRecord {
		return nil, errTruncated
	}
	base := len(dst)
	if cap(dst)-base < count {
		dst = slices.Grow(dst, count)
	}
	for len(dst)-base < count {
		if len(data) < 3 {
			return nil, errTruncated
		}
		hdr := data[0]
		bias := int16(binary.LittleEndian.Uint16(data[1:]))
		data = data[3:]
		take := count - (len(dst) - base)
		if take > compress.BlockValues64 {
			take = compress.BlockValues64
		}
		n := len(dst)
		dst = dst[:n+take]
		if hdr&0x80 != 0 {
			size := int(hdr & 0x0F)
			if size < 1 || size > compress.MaxCompressedLines {
				return nil, fmt.Errorf("avr: bad block size %d", size)
			}
			if len(data) < size*compress.LineBytes {
				return nil, errTruncated
			}
			payload := data[:size*compress.LineBytes]
			data = data[size*compress.LineBytes:]
			var summary [compress.SummaryValues64]int64
			for i := range summary {
				summary[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
			}
			var bitmap, outlierBytes []byte
			if size > 1 {
				bitmap = payload[compress.LineBytes : compress.LineBytes+compress.BitmapBytes64]
				k := 0
				for _, x := range bitmap {
					k += bits.OnesCount8(x)
				}
				if compress.CompressedLines64(k) != size {
					return nil, err64BitmapSize
				}
				p := compress.LineBytes + compress.BitmapBytes64
				outlierBytes = payload[p : p+8*k]
			}
			c.comp.DecompressInto64(&c.rec64, &summary, bitmap, outlierBytes, bias)
			for i := 0; i < take; i++ {
				dst[n+i] = math.Float64frombits(c.rec64[i])
			}
		} else {
			if len(data) < compress.BlockBytes {
				return nil, errTruncated
			}
			for i := 0; i < take; i++ {
				dst[n+i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
			}
			data = data[compress.BlockBytes:]
		}
	}
	return dst, nil
}

// Ratio64 reports the compression ratio of an Encode64 stream. A
// non-positive value count or an empty stream yields 0, never ±Inf or a
// negative ratio.
func Ratio64(valueCount int, encoded []byte) float64 {
	if valueCount <= 0 || len(encoded) == 0 {
		return 0
	}
	return float64(8*valueCount) / float64(len(encoded))
}
