package avr

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"avr/internal/workloads"
)

// Differential harness: the fast codec paths (EncodeTo/DecodeTo and the
// 64-bit twins) must be byte-identical to the retained reference scalar
// codec in codec_reference.go across every workload distribution and
// across lengths that cross every lane/padding boundary.

// diffSizes crosses the structural boundaries of the wire format: empty,
// sub-block (16) edges, block (256 / 128) edges, and multi-block tails.
var diffSizes = []int{0, 1, 2, 15, 16, 17, 31, 32, 33, 127, 128, 129, 255, 256, 257, 300, 511, 512, 513, 4096, 4097}

func TestCodecDifferentialWorkloads32(t *testing.T) {
	for _, dist := range workloads.Distributions() {
		for _, n := range diffSizes {
			t.Run(fmt.Sprintf("%s/%d", dist, n), func(t *testing.T) {
				vals, err := workloads.GenFloat32(dist, n, 42)
				if err != nil {
					t.Fatal(err)
				}
				assertCodecDifferential32(t, vals)
			})
		}
	}
}

func TestCodecDifferentialWorkloads64(t *testing.T) {
	for _, dist := range workloads.Distributions() {
		for _, n := range diffSizes {
			t.Run(fmt.Sprintf("%s/%d", dist, n), func(t *testing.T) {
				vals, err := workloads.GenFloat64(dist, n, 42)
				if err != nil {
					t.Fatal(err)
				}
				assertCodecDifferential64(t, vals)
			})
		}
	}
}

// TestCodecDifferentialEdgeLengths32 sweeps every length from 0 through a
// full block plus a tail, so each possible partial-block padding amount is
// exercised at least once.
func TestCodecDifferentialEdgeLengths32(t *testing.T) {
	for n := 0; n <= 300; n++ {
		vals := make([]float32, n)
		for i := range vals {
			// Smooth base with periodic spikes: compressible blocks with
			// non-empty outlier sets.
			vals[i] = float32(80 + 5*math.Sin(float64(i)/20))
			if i%37 == 0 {
				vals[i] *= 4
			}
		}
		assertCodecDifferential32(t, vals)
	}
}

func TestCodecDifferentialEdgeLengths64(t *testing.T) {
	for n := 0; n <= 129; n++ {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 80 + 5*math.Sin(float64(i)/20)
			if i%29 == 0 {
				vals[i] *= 4
			}
		}
		assertCodecDifferential64(t, vals)
	}
}

// TestCodecDifferentialSpecials32 pins the fast path on blocks built from
// IEEE special values and on the all-outlier / zero-outlier extremes.
func TestCodecDifferentialSpecials32(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	denorm := math.Float32frombits(1)
	negZero := float32(math.Copysign(0, -1))
	cases := map[string][]float32{
		"all-nan":       repeat32(nan, 256),
		"all-inf":       repeat32(inf, 256),
		"all-denormal":  repeat32(denorm, 256),
		"all-zero":      repeat32(0, 256),
		"all-neg-zero":  repeat32(negZero, 256),
		"specials-mix":  {nan, inf, float32(math.Inf(-1)), denorm, -denorm, 0, negZero, 1, -1, math.MaxFloat32, -math.MaxFloat32, math.SmallestNonzeroFloat32},
		"zero-outliers": smoothSignal(512),
		"sign-flips":    alternating32(256),
		"partial-nan":   append(repeat32(1.5, 200), nan, inf, denorm),
	}
	// All-outlier block: constant base with one spike per value position
	// would just be raw; instead alternate exponents so every value misses
	// its sub-block average.
	allOut := make([]float32, 256)
	for i := range allOut {
		if i%2 == 0 {
			allOut[i] = 1
		} else {
			allOut[i] = 1e20
		}
	}
	cases["all-outlier"] = allOut
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) { assertCodecDifferential32(t, vals) })
	}
}

func TestCodecDifferentialSpecials64(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	denorm := math.Float64frombits(1)
	negZero := math.Copysign(0, -1)
	cases := map[string][]float64{
		"all-nan":      repeat64(nan, 128),
		"all-inf":      repeat64(inf, 128),
		"all-denormal": repeat64(denorm, 128),
		"all-zero":     repeat64(0, 128),
		"all-neg-zero": repeat64(negZero, 128),
		"specials-mix": {nan, inf, math.Inf(-1), denorm, -denorm, 0, negZero, 1, -1, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64},
		"partial-nan":  append(repeat64(1.5, 100), nan, inf, denorm),
	}
	allOut := make([]float64, 128)
	for i := range allOut {
		if i%2 == 0 {
			allOut[i] = 1
		} else {
			allOut[i] = 1e200
		}
	}
	cases["all-outlier"] = allOut
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) { assertCodecDifferential64(t, vals) })
	}
}

// TestEncodeToAppendsToPrefix checks the append contract: EncodeTo and
// DecodeTo extend the buffer they are given without disturbing its
// existing contents.
func TestEncodeToAppendsToPrefix(t *testing.T) {
	c := NewCodec(0)
	vals := smoothSignal(300)
	enc, err := c.Encode(vals)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("prefix")
	got, err := c.EncodeTo(append([]byte(nil), prefix...), vals)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, prefix) || !bytes.Equal(got[len(prefix):], enc) {
		t.Fatalf("EncodeTo did not append cleanly after prefix")
	}

	head := []float32{1, 2, 3}
	dec, err := c.DecodeTo(append([]float32(nil), head...), enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(head)+len(vals) {
		t.Fatalf("DecodeTo length = %d, want %d", len(dec), len(head)+len(vals))
	}
	for i, v := range head {
		if dec[i] != v {
			t.Fatalf("DecodeTo clobbered dst[%d]: got %v want %v", i, dec[i], v)
		}
	}
	ref, err := c.referenceDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ref {
		if math.Float32bits(dec[len(head)+i]) != math.Float32bits(v) {
			t.Fatalf("DecodeTo value %d = %v, reference %v", i, dec[len(head)+i], v)
		}
	}
}

func TestEncode64ToAppendsToPrefix(t *testing.T) {
	c := NewCodec(0)
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = 50 + 10*math.Sin(float64(i)/40)
	}
	enc, err := c.Encode64(vals)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("prefix")
	got, err := c.Encode64To(append([]byte(nil), prefix...), vals)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, prefix) || !bytes.Equal(got[len(prefix):], enc) {
		t.Fatalf("Encode64To did not append cleanly after prefix")
	}
	head := []float64{1, 2, 3}
	dec, err := c.Decode64To(append([]float64(nil), head...), enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(head)+len(vals) {
		t.Fatalf("Decode64To length = %d, want %d", len(dec), len(head)+len(vals))
	}
	for i, v := range head {
		if dec[i] != v {
			t.Fatalf("Decode64To clobbered dst[%d]: got %v want %v", i, dec[i], v)
		}
	}
}

// assertCodecDifferential32 checks fast-vs-reference byte identity on
// encode and bit identity on decode, plus scratch-buffer reuse stability
// (a second encode into a retained buffer must reproduce the stream).
func assertCodecDifferential32(t *testing.T, vals []float32) {
	t.Helper()
	c := NewCodec(0)
	ref, err := c.referenceEncode(vals)
	if err != nil {
		t.Fatalf("referenceEncode: %v", err)
	}
	fast, err := c.Encode(vals)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(ref, fast) {
		t.Fatalf("encode mismatch: reference %d bytes, fast %d bytes, first diff at %d", len(ref), len(fast), firstDiff(ref, fast))
	}
	again, err := c.EncodeTo(fast[len(fast):], vals)
	if err != nil {
		t.Fatalf("EncodeTo reuse: %v", err)
	}
	if !bytes.Equal(ref, again) {
		t.Fatalf("EncodeTo with retained buffer diverged at %d", firstDiff(ref, again))
	}

	refDec, err := c.referenceDecode(ref)
	if err != nil {
		t.Fatalf("referenceDecode: %v", err)
	}
	fastDec, err := c.Decode(fast)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(refDec) != len(fastDec) || len(fastDec) != len(vals) {
		t.Fatalf("decode lengths: reference %d, fast %d, input %d", len(refDec), len(fastDec), len(vals))
	}
	for i := range refDec {
		if math.Float32bits(refDec[i]) != math.Float32bits(fastDec[i]) {
			t.Fatalf("decode mismatch at %d: reference %x, fast %x", i, math.Float32bits(refDec[i]), math.Float32bits(fastDec[i]))
		}
	}
}

func assertCodecDifferential64(t *testing.T, vals []float64) {
	t.Helper()
	c := NewCodec(0)
	ref, err := c.referenceEncode64(vals)
	if err != nil {
		t.Fatalf("referenceEncode64: %v", err)
	}
	fast, err := c.Encode64(vals)
	if err != nil {
		t.Fatalf("Encode64: %v", err)
	}
	if !bytes.Equal(ref, fast) {
		t.Fatalf("encode64 mismatch: reference %d bytes, fast %d bytes, first diff at %d", len(ref), len(fast), firstDiff(ref, fast))
	}
	again, err := c.Encode64To(fast[len(fast):], vals)
	if err != nil {
		t.Fatalf("Encode64To reuse: %v", err)
	}
	if !bytes.Equal(ref, again) {
		t.Fatalf("Encode64To with retained buffer diverged at %d", firstDiff(ref, again))
	}

	refDec, err := c.referenceDecode64(ref)
	if err != nil {
		t.Fatalf("referenceDecode64: %v", err)
	}
	fastDec, err := c.Decode64(fast)
	if err != nil {
		t.Fatalf("Decode64: %v", err)
	}
	if len(refDec) != len(fastDec) || len(fastDec) != len(vals) {
		t.Fatalf("decode64 lengths: reference %d, fast %d, input %d", len(refDec), len(fastDec), len(vals))
	}
	for i := range refDec {
		if math.Float64bits(refDec[i]) != math.Float64bits(fastDec[i]) {
			t.Fatalf("decode64 mismatch at %d: reference %x, fast %x", i, math.Float64bits(refDec[i]), math.Float64bits(fastDec[i]))
		}
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func repeat32(v float32, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func repeat64(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func alternating32(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(1 + i%7)
		if i%2 == 1 {
			out[i] = -out[i]
		}
	}
	return out
}
