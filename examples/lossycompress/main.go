// Lossycompress: sweep the AVR error-threshold knob over three kinds of
// data (smooth sensor traces, rough terrain, financial series) and report
// the compression-ratio / quality trade-off — the §3.3 "tunable knob" of
// the paper, exercised through the standalone codec.
package main

import (
	"fmt"
	"math"

	"avr"
)

// datasets generates three value distributions of decreasing smoothness.
func datasets() map[string][]float32 {
	const n = 128 * 1024
	smooth := make([]float32, n)
	terrain := make([]float32, n)
	prices := make([]float32, n)

	s := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11) / float64(1<<53)
	}

	level := 700.0
	price := 100.0
	for i := 0; i < n; i++ {
		smooth[i] = float32(20 + 5*math.Sin(float64(i)/200) + 2*math.Cos(float64(i)/47))
		level += (next() - 0.5) * 8 // random-walk terrain
		terrain[i] = float32(level)
		price *= 1 + (next()-0.5)*0.01 // geometric random walk
		prices[i] = float32(price)
	}
	return map[string][]float32{"smooth": smooth, "terrain": terrain, "prices": prices}
}

func meanErr(a, b []float32) float64 {
	var s float64
	for i := range a {
		if a[i] == 0 {
			continue
		}
		s += math.Abs(float64(b[i]-a[i])) / math.Abs(float64(a[i]))
	}
	return s / float64(len(a))
}

func main() {
	data := datasets()
	fmt.Printf("%-8s  %-10s  %-8s  %-10s\n", "dataset", "T1 knob", "ratio", "mean error")
	for _, name := range []string{"smooth", "terrain", "prices"} {
		vals := data[name]
		for _, t1 := range []float64{1.0 / 8, 1.0 / 32, 1.0 / 128, 1.0 / 512} {
			codec := avr.NewCodec(t1)
			enc, err := codec.Encode(vals)
			if err != nil {
				panic(err)
			}
			dec, err := codec.Decode(enc)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%-8s  1/%-8.0f  %6.1f:1  %9.4f%%\n",
				name, 1/t1, avr.Ratio(len(vals), enc), 100*meanErr(vals, dec))
		}
		fmt.Println()
	}
	fmt.Println("the knob trades quality for ratio exactly as §3.3 describes:")
	fmt.Println("loose thresholds downsample aggressively; tight thresholds")
	fmt.Println("spill outliers until blocks stop compressing at all.")
}
