// Quickstart: compress a float dataset with the AVR codec, then run one
// benchmark through the architectural simulator and compare AVR against
// the uncompressed baseline.
package main

import (
	"fmt"
	"log"
	"math"

	"avr"
)

func main() {
	// --- 1. The AVR compressor as a standalone lossy codec. ---
	data := make([]float32, 64*1024)
	for i := range data {
		// A smooth sensor-like signal with occasional spikes.
		data[i] = float32(20 + 5*math.Sin(float64(i)/100))
		if i%997 == 0 {
			data[i] *= 50
		}
	}
	codec := avr.NewCodec(0) // default thresholds (T1 = 1/32)
	enc, err := codec.Encode(data)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := codec.Decode(enc)
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for i := range data {
		re := math.Abs(float64(dec[i]-data[i])) / math.Abs(float64(data[i]))
		if re > worst {
			worst = re
		}
	}
	fmt.Printf("codec: %d values -> %d bytes (%.1f:1), worst value error %.3f%%\n",
		len(data), len(enc), avr.Ratio(len(data), enc), worst*100)

	// --- 2. The architectural simulator. ---
	fmt.Println("\nsimulating heat diffusion (2D Jacobi) on two memory systems...")
	base, err := avr.RunBenchmark("heat", avr.Baseline, avr.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	res, err := avr.RunBenchmark("heat", avr.AVR, avr.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  baseline: %12d cycles, %6.2f MB DRAM traffic\n",
		base.Cycles, float64(base.DRAM.TotalBytes())/1e6)
	fmt.Printf("  AVR:      %12d cycles, %6.2f MB DRAM traffic, %.1f:1 compression\n",
		res.Cycles, float64(res.DRAM.TotalBytes())/1e6, res.CompressionRatio)
	fmt.Printf("  speedup %.2fx, traffic reduced %.0f%%\n",
		float64(base.Cycles)/float64(res.Cycles),
		100*(1-float64(res.DRAM.TotalBytes())/float64(base.DRAM.TotalBytes())))

	errPct, err := avr.OutputError("heat", avr.AVR, avr.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  application output error: %.2f%%\n", errPct*100)
}
