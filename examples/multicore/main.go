// Multicore: scale the heat benchmark from 1 to 8 cores on a shared-LLC
// CMP under the baseline and AVR memory systems. The baseline hits the
// bandwidth wall (adding cores barely helps: every core fights for the
// same DRAM pins); AVR's traffic reduction turns bandwidth headroom into
// real scaling — the paper's motivating argument (§1) made visible.
package main

import (
	"fmt"
	"log"

	"avr"
)

func main() {
	fmt.Printf("%-6s  %-9s  %-12s  %-8s  %-10s\n",
		"cores", "design", "cycles", "speedup", "traffic MB")
	for _, d := range []avr.Design{avr.Baseline, avr.AVR} {
		var oneCore uint64
		for _, n := range []int{1, 2, 4, 8} {
			r, err := avr.RunMulticore("heat", d, n, avr.ScaleSmall)
			if err != nil {
				log.Fatal(err)
			}
			if n == 1 {
				oneCore = r.Cycles
			}
			fmt.Printf("%-6d  %-9s  %-12d  %-8.2f  %-10.1f\n",
				n, d, r.Cycles,
				float64(oneCore)/float64(r.Cycles),
				float64(r.Result.DRAM.TotalBytes())/1e6)
		}
		fmt.Println()
	}
	fmt.Println("the baseline is pin-limited: more cores, same traffic, no speedup.")
	fmt.Println("AVR moves less data, so the same cores actually compute.")
}
