// Heatmap: run the heat-diffusion benchmark under the exact baseline and
// under AVR, render both temperature fields as ASCII heat maps, and show
// where the approximation error concentrates.
//
// This is the visual version of the paper's quality argument: AVR's
// downsampling preserves the shape of smooth fields, and the outlier
// mechanism protects the sharp features.
package main

import (
	"fmt"
	"log"
	"math"

	"avr"
)

const shades = " .:-=+*#%@"

func render(title string, grid [][]float64, lo, hi float64) {
	fmt.Println(title)
	for _, row := range grid {
		line := make([]byte, len(row))
		for j, v := range row {
			t := (v - lo) / (hi - lo)
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			line[j] = shades[int(t*float64(len(shades)-1))]
		}
		fmt.Println(string(line))
	}
	fmt.Println()
}

func main() {
	// Build a synthetic temperature field (two hot spots on a cold
	// plate), push it through the AVR codec, and render both versions.
	const n = 96
	field := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x, y := float64(i)/n, float64(j)/n
			v := 20 + 60*math.Exp(-((x-0.3)*(x-0.3)+(y-0.5)*(y-0.5))*12) +
				40*math.Exp(-((x-0.7)*(x-0.7)+(y-0.2)*(y-0.2))*30)
			field[i*n+j] = float32(v)
		}
	}
	codec := avr.NewCodec(0)
	enc, err := codec.Encode(field)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := codec.Decode(enc)
	if err != nil {
		log.Fatal(err)
	}

	toGrid := func(f []float32) [][]float64 {
		var g [][]float64
		for i := 0; i < n; i += 4 {
			var row []float64
			for j := 0; j < n; j += 2 {
				row = append(row, float64(f[i*n+j]))
			}
			g = append(g, row)
		}
		return g
	}
	render("original temperature field:", toGrid(field), 20, 85)
	render(fmt.Sprintf("AVR reconstruction (%.1f:1 compressed):",
		avr.Ratio(len(field), enc)), toGrid(dec), 20, 85)

	// Error map, amplified.
	errField := make([]float32, n*n)
	var maxErr float64
	for i := range field {
		e := math.Abs(float64(dec[i] - field[i]))
		errField[i] = float32(e)
		if e > maxErr {
			maxErr = e
		}
	}
	render(fmt.Sprintf("absolute error (max %.3f K):", maxErr),
		toGrid(errField), 0, maxErr)
}
