// Command avrrouter fronts a sharded avrd fleet: a consistent-hash
// ring (static JSON topology, no consensus) spreads store keys across
// the nodes, every key is written to two replicas, and reads are
// read-any — primary first, replica on error or timeout — which is
// safe because every stored value was encoded at the store's quantized
// t1, so the client's bound check holds whichever copy answers.
//
// Usage:
//
//	avrrouter -addr localhost:9090 -topology topology.json
//	curl -s -X PUT --data-binary @values.f32le 'localhost:9090/v1/store/put?key=temps'
//	curl -s 'localhost:9090/v1/store/get?key=temps' > approx.f32le
//	curl -s 'localhost:9090/v1/store/query' | jq .sum          # cluster-wide aggregate
//	curl -s localhost:9090/v1/stats | jq .nodes                # health + traffic per node
//
// topology.json:
//
//	{"vnodes": 128, "replication": 2, "nodes": [
//	  {"name": "node-a", "addr": "127.0.0.1:8081"},
//	  {"name": "node-b", "addr": "127.0.0.1:8082"},
//	  {"name": "node-c", "addr": "127.0.0.1:8083"}]}
//
// The router carries its own bounded admission (worker slots + queue,
// 429 with Retry-After when full — downstream 429s surface the fleet's
// max Retry-After, not the router's), probes every node's /readyz and
// ejects/readmits them from rotation, batches multi-key traffic via
// /v1/store/mput and /v1/store/mget grouped by owning shard, and
// exposes Prometheus metrics at /metrics plus request tracing with
// route/fanout stages.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"avr/internal/cliutil"
	"avr/internal/cluster"
)

func main() {
	addr := flag.String("addr", "localhost:9090", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file (for scripts, with -addr :0)")
	topoPath := flag.String("topology", "", "cluster topology JSON file (required)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrently proxied requests")
	queue := flag.Int("queue", 0, "admission queue depth; 0 = 4×workers (beyond it requests shed with 429)")
	maxBody := flag.Int64("max-body", 8<<20, "max request body bytes")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "max wait for a router worker before 503")
	legTimeout := flag.Duration("leg-timeout", 5*time.Second, "max time for one downstream request")
	retries := flag.Int("retries", 2, "extra attempts for the replica leg after its first failure")
	retryBackoff := flag.Duration("retry-backoff", 25*time.Millisecond, "initial replica-leg backoff (doubles per retry)")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "node /readyz polling cadence")
	ejectAfter := flag.Int("eject-after", 2, "consecutive probe failures before a node leaves rotation")
	readmitAfter := flag.Int("readmit-after", 2, "consecutive probe successes before an ejected node returns")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests on shutdown")
	traceSample := flag.Int("trace-sample", 0, "export one of every N request traces as JSONL; 0 = default (64), needs -trace-file")
	traceFile := flag.String("trace-file", "", "append sampled request-trace JSONL to this file (empty disables export)")
	cacheBytes := flag.Int64("cache-bytes", 0, "router-side response cache budget in bytes; 0 disables (nodes cache independently)")
	prefetch := flag.Bool("prefetch", true, "enable stride prefetch in the router response cache (needs -cache-bytes)")
	var debugAddr string
	cliutil.RegisterDebug(flag.CommandLine, &debugAddr)
	flag.Parse()

	cliutil.StartDebug(debugAddr)

	if *topoPath == "" {
		cliutil.Fatal(errors.New("avrrouter: -topology is required"))
	}
	topo, err := cluster.LoadTopology(*topoPath)
	if err != nil {
		cliutil.Fatal(err)
	}

	ccfg := cluster.Config{
		Topology:         topo,
		Workers:          *workers,
		QueueDepth:       *queue,
		MaxBodyBytes:     *maxBody,
		QueueTimeout:     *queueTimeout,
		LegTimeout:       *legTimeout,
		Retries:          *retries,
		RetryBackoff:     *retryBackoff,
		ProbeInterval:    *probeInterval,
		EjectAfter:       *ejectAfter,
		ReadmitAfter:     *readmitAfter,
		TraceSampleEvery: *traceSample,
		CacheBytes:       *cacheBytes,
		Prefetch:         *prefetch,
	}
	if *traceFile != "" {
		tf, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			cliutil.Fatal(err)
		}
		defer tf.Close()
		ccfg.TraceSink = tf
	}
	ro, err := cluster.New(ccfg)
	if err != nil {
		cliutil.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cliutil.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			cliutil.Fatal(err)
		}
	}
	slog.Info("avrrouter listening", "addr", ln.Addr().String(),
		"nodes", len(topo.Nodes), "vnodes", topo.VNodes,
		"replication", topo.Replication, "workers", *workers)

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- ro.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cliutil.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		slog.Info("avrrouter draining", "timeout", drainTimeout.String())
		sdCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := ro.Shutdown(sdCtx); err != nil {
			slog.Error("avrrouter drain incomplete", "err", err)
			os.Exit(1)
		}
		slog.Info("avrrouter drained cleanly")
	}
}
