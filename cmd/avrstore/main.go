// Command avrstore packs, inspects and verifies persistent approximate
// block stores (internal/store) offline — the operational face of the
// store that scripts/store_smoke.sh and the crash-safety drills use.
//
// Subcommands:
//
//	avrstore pack -dir D -keys 8 -values 100000 -dist heat [-width 64] [-t1 X]
//	    Generate workload vectors, put them, and record a manifest
//	    (manifest.json in the store directory) naming each key's
//	    generator and seed so verify can regenerate the ground truth.
//
//	avrstore inspect -dir D [-blocks]
//	    Print the store's stats snapshot as JSON; -blocks adds the
//	    per-key block layout.
//
//	avrstore verify -dir D [-allow-partial]
//	    Reopen the store, regenerate every manifest vector, and check
//	    each get: every value within the store's t1, bit-exact where the
//	    block table says the block was stored lossless. -allow-partial
//	    accepts vectors truncated by a crash (the recovered prefix must
//	    still verify) — without it any incomplete vector fails.
//
//	avrstore compact -dir D
//	    Run compaction passes until no segment qualifies, printing each
//	    pass's result.
//
// Exit status: 0 on success, 1 on any verification failure or error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"avr/internal/cliutil"
	"avr/internal/store"
	"avr/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "pack":
		err = cmdPack(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		cliutil.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: avrstore {pack|inspect|verify|compact} [flags]")
	os.Exit(2)
}

// manifest records what pack wrote, so verify can regenerate the exact
// ground truth without storing it.
type manifest struct {
	Width   int             `json:"width"`
	T1      float64         `json:"t1"`
	Entries []manifestEntry `json:"entries"`
}

type manifestEntry struct {
	Key    string `json:"key"`
	Dist   string `json:"dist"`
	Seed   uint64 `json:"seed"`
	Values int    `json:"values"`
}

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

func cmdPack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	keys := fs.Int("keys", 8, "number of keys to write")
	values := fs.Int("values", 100000, "values per key")
	dist := fs.String("dist", "heat", "value distribution: "+strings.Join(workloads.Distributions(), ", ")+", or mixed-all to cycle")
	width := fs.Int("width", 32, "value width in bits: 32 or 64")
	seed := fs.Uint64("seed", 1, "base generator seed (key i uses seed+i)")
	sync := fs.Bool("sync", false, "fsync after every put")
	encWorkers := fs.Int("encode-workers", 0, "goroutines encoding a put's blocks in parallel; 0 or 1 = serial")
	var t1 float64
	cliutil.RegisterT1(fs, &t1)
	fs.Parse(args)
	if *dir == "" {
		return errors.New("pack: -dir is required")
	}
	if *width != 32 && *width != 64 {
		return fmt.Errorf("pack: bad -width %d", *width)
	}

	s, err := store.Open(store.Config{Dir: *dir, T1: t1, SyncEveryPut: *sync, EncodeWorkers: *encWorkers})
	if err != nil {
		return err
	}
	defer s.Close()

	dists := []string{*dist}
	if *dist == "mixed-all" {
		dists = workloads.Distributions()
	}
	m := manifest{Width: *width, T1: s.T1()}
	for i := 0; i < *keys; i++ {
		e := manifestEntry{
			Key:    fmt.Sprintf("pack-%04d", i),
			Dist:   dists[i%len(dists)],
			Seed:   *seed + uint64(i),
			Values: *values,
		}
		var res store.PutResult
		if *width == 32 {
			vals, gerr := workloads.GenFloat32(e.Dist, e.Values, e.Seed)
			if gerr != nil {
				return gerr
			}
			res, err = s.Put32(e.Key, vals)
		} else {
			vals, gerr := workloads.GenFloat64(e.Dist, e.Values, e.Seed)
			if gerr != nil {
				return gerr
			}
			res, err = s.Put64(e.Key, vals)
		}
		if err != nil {
			return err
		}
		fmt.Printf("packed %s: %d values (%s), %d blocks (%d lossless), ratio %.2f\n",
			e.Key, res.Values, e.Dist, res.Blocks, res.LosslessBlocks, res.Ratio)
		m.Entries = append(m.Entries, e)
	}

	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(manifestPath(*dir), append(mb, '\n'), 0o644); err != nil {
		return err
	}
	st := s.Stats()
	fmt.Printf("packed %d keys: %.2f:1 on disk, %d segments, %d flagged blocks\n",
		len(m.Entries), st.AchievedRatio, st.Segments, st.FlaggedBlocks)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	blocks := fs.Bool("blocks", false, "include the per-key block layout")
	var t1 float64
	cliutil.RegisterT1(fs, &t1)
	fs.Parse(args)
	if *dir == "" {
		return errors.New("inspect: -dir is required")
	}

	s, err := store.Open(store.Config{Dir: *dir, T1: t1})
	if err != nil {
		return err
	}
	defer s.Close()

	out := struct {
		store.Stats
		Blocks map[string][]store.BlockInfo `json:"blocks,omitempty"`
	}{Stats: s.Stats()}
	if *blocks {
		out.Blocks = make(map[string][]store.BlockInfo)
		for _, k := range s.Keys() {
			bi, err := s.BlockInfos(k)
			if err != nil {
				return err
			}
			out.Blocks[k] = bi
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	allowPartial := fs.Bool("allow-partial", false, "accept crash-truncated vectors (recovered prefix must still verify)")
	fs.Parse(args)
	if *dir == "" {
		return errors.New("verify: -dir is required")
	}

	mb, err := os.ReadFile(manifestPath(*dir))
	if err != nil {
		return fmt.Errorf("verify: reading manifest (run pack first): %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return fmt.Errorf("verify: bad manifest: %w", err)
	}

	s, err := store.Open(store.Config{Dir: *dir, T1: m.T1})
	if err != nil {
		return err
	}
	defer s.Close()
	t1 := s.T1()

	var failures, partial int
	for _, e := range m.Entries {
		n, perr := verifyEntry(s, m.Width, t1, e, *allowPartial)
		if perr != nil {
			fmt.Printf("FAIL %s: %v\n", e.Key, perr)
			failures++
			continue
		}
		if n < e.Values {
			partial++
			fmt.Printf("ok   %s: %d/%d values (truncated by crash), all within t1\n", e.Key, n, e.Values)
		} else {
			fmt.Printf("ok   %s: %d values within t1=%g\n", e.Key, n, t1)
		}
	}
	if failures > 0 {
		return fmt.Errorf("verify: %d of %d keys failed", failures, len(m.Entries))
	}
	fmt.Printf("verify: %d keys ok (%d partial) at t1=%g\n", len(m.Entries), partial, t1)
	return nil
}

// verifyEntry checks one key against its regenerated ground truth and
// returns how many values were served.
func verifyEntry(s *store.Store, width int, t1 float64, e manifestEntry, allowPartial bool) (int, error) {
	v32, v64, w, err := s.Get(e.Key)
	incomplete := errors.Is(err, store.ErrIncomplete)
	if err != nil && !incomplete {
		return 0, err
	}
	if incomplete && !allowPartial {
		return 0, errors.New("vector incomplete (crash-truncated); rerun with -allow-partial to accept the prefix")
	}
	if w != width {
		return 0, fmt.Errorf("width %d on disk, manifest says %d", w, width)
	}

	infos, err := s.BlockInfos(e.Key)
	if err != nil {
		return 0, err
	}
	lossless := make(map[int]bool)
	for _, bi := range infos {
		if bi.Lossless {
			lossless[bi.Index] = true
		}
	}

	check := func(i int, got, want float64, exact bool) error {
		if lossless[i/store.BlockValues] {
			if !exact {
				return fmt.Errorf("value %d: lossless block not bit-exact", i)
			}
			return nil
		}
		if math.Abs(got-want) > t1*math.Abs(want)*(1+1e-9) {
			return fmt.Errorf("value %d: |%g - %g| beyond t1=%g", i, got, want, t1)
		}
		return nil
	}

	if width == 32 {
		want, gerr := workloads.GenFloat32(e.Dist, e.Values, e.Seed)
		if gerr != nil {
			return 0, gerr
		}
		for i := range v32 {
			if err := check(i, float64(v32[i]), float64(want[i]),
				math.Float32bits(v32[i]) == math.Float32bits(want[i])); err != nil {
				return 0, err
			}
		}
		return len(v32), nil
	}
	want, gerr := workloads.GenFloat64(e.Dist, e.Values, e.Seed)
	if gerr != nil {
		return 0, gerr
	}
	for i := range v64 {
		if err := check(i, v64[i], want[i],
			math.Float64bits(v64[i]) == math.Float64bits(want[i])); err != nil {
			return 0, err
		}
	}
	return len(v64), nil
}

func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	var t1 float64
	cliutil.RegisterT1(fs, &t1)
	fs.Parse(args)
	if *dir == "" {
		return errors.New("compact: -dir is required")
	}

	s, err := store.Open(store.Config{Dir: *dir, T1: t1})
	if err != nil {
		return err
	}
	defer s.Close()

	start := time.Now()
	var passes int
	for {
		res, did, err := s.CompactOnce()
		if err != nil {
			return err
		}
		if !did {
			break
		}
		passes++
		fmt.Printf("compacted segment %d: moved %d frames (%d B), reclaimed %d B, recompress %d tried / %d won / %d skipped\n",
			res.Segment, res.FramesMoved, res.BytesMoved, res.BytesReclaimed,
			res.RecompressTried, res.RecompressWon, res.RecompressSkipped)
	}
	st := s.Stats()
	fmt.Printf("compact: %d passes in %s, debt now %.3f, %.2f:1 on disk\n",
		passes, time.Since(start).Round(time.Millisecond), st.CompactionDebt, st.AchievedRatio)
	return nil
}
