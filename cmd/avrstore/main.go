// Command avrstore packs, inspects and verifies persistent approximate
// block stores (internal/store) offline — the operational face of the
// store that scripts/store_smoke.sh and the crash-safety drills use.
//
// Subcommands:
//
//	avrstore pack -dir D -keys 8 -values 100000 -dist heat [-width 64] [-t1 X]
//	    Generate workload vectors, put them, and record a manifest
//	    (manifest.json in the store directory) naming each key's
//	    generator and seed so verify can regenerate the ground truth.
//
//	avrstore pack -addr A -manifest M [-keys N ...]
//	    Same, but write through a live avrd or avrrouter at host:port
//	    via PUT /v1/store/put. Against a router every key lands on two
//	    replicas. The manifest goes to -manifest (no store dir exists
//	    client-side).
//
//	avrstore inspect -dir D [-blocks]
//	    Print the store's stats snapshot as JSON; -blocks adds the
//	    per-key block layout.
//
//	avrstore verify -dir D [-allow-partial]
//	    Reopen the store, regenerate every manifest vector, and check
//	    each get: every value within the store's t1, bit-exact where the
//	    block table says the block was stored lossless. -allow-partial
//	    accepts vectors truncated by a crash (the recovered prefix must
//	    still verify) — without it any incomplete vector fails.
//
//	avrstore verify -addr A -manifest M [-allow-partial]
//	    Same ground truth, but through a live avrd or avrrouter: keys
//	    are enumerated via GET /v1/store/key (on a router that fans out
//	    to every shard and unions the answers), every manifest key must
//	    be present, and every GET /v1/store/get value must sit within
//	    the manifest t1 — whichever replica served it. This is the
//	    offline proof that read-any replication returns bounded values
//	    even with nodes down.
//
//	avrstore compact -dir D
//	    Run compaction passes until no segment qualifies, printing each
//	    pass's result.
//
//	avrstore query -dir D -key K [-op aggregate|filter|downsample] [-lo L -hi H]
//	    Answer one compressed-domain query from block summaries (no full
//	    decode) and print the result JSON, error bounds and
//	    bytes_touched/bytes_total included.
//
//	avrstore query -dir D -check
//	    Run every query op over every manifest key and verify the
//	    answers against regenerated ground truth: aggregates within
//	    their error bounds, filter brackets containing the exact match
//	    count, downsampled points within their per-point bounds.
//
// Exit status: 0 on success, 1 on any verification failure or error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"avr/internal/cliutil"
	"avr/internal/store"
	"avr/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "pack":
		err = cmdPack(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		cliutil.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: avrstore {pack|inspect|verify|compact|query} [flags]")
	os.Exit(2)
}

// manifest records what pack wrote, so verify can regenerate the exact
// ground truth without storing it.
type manifest struct {
	Width   int             `json:"width"`
	T1      float64         `json:"t1"`
	Entries []manifestEntry `json:"entries"`
}

type manifestEntry struct {
	Key    string `json:"key"`
	Dist   string `json:"dist"`
	Seed   uint64 `json:"seed"`
	Values int    `json:"values"`
}

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

func cmdPack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required unless -addr)")
	addr := fs.String("addr", "", "write through a live avrd/avrrouter at host:port instead of a local -dir")
	addrFile := fs.String("addr-file", "", "read -addr from this file (written by -addr-file on the daemon)")
	manifestOut := fs.String("manifest", "", "manifest path (default <dir>/manifest.json; required with -addr)")
	keys := fs.Int("keys", 8, "number of keys to write")
	values := fs.Int("values", 100000, "values per key")
	dist := fs.String("dist", "heat", "value distribution: "+strings.Join(workloads.Distributions(), ", ")+", or mixed-all to cycle")
	width := fs.Int("width", 32, "value width in bits: 32 or 64")
	seed := fs.Uint64("seed", 1, "base generator seed (key i uses seed+i)")
	sync := fs.Bool("sync", false, "fsync after every put")
	encWorkers := fs.Int("encode-workers", 0, "goroutines encoding a put's blocks in parallel; 0 or 1 = serial")
	var t1 float64
	cliutil.RegisterT1(fs, &t1)
	fs.Parse(args)
	if a, err := resolveAddr(*addr, *addrFile); err != nil {
		return fmt.Errorf("pack: %w", err)
	} else if a != "" {
		if *manifestOut == "" {
			return errors.New("pack: -manifest is required with -addr (there is no store directory to default into)")
		}
		if *width != 32 && *width != 64 {
			return fmt.Errorf("pack: bad -width %d", *width)
		}
		return packRemote(a, *manifestOut, *keys, *values, *dist, *width, *seed, t1)
	}
	if *dir == "" {
		return errors.New("pack: -dir or -addr is required")
	}
	if *width != 32 && *width != 64 {
		return fmt.Errorf("pack: bad -width %d", *width)
	}

	s, err := store.Open(store.Config{Dir: *dir, T1: t1, SyncEveryPut: *sync, EncodeWorkers: *encWorkers})
	if err != nil {
		return err
	}
	defer s.Close()

	dists := []string{*dist}
	if *dist == "mixed-all" {
		dists = workloads.Distributions()
	}
	m := manifest{Width: *width, T1: s.T1()}
	for i := 0; i < *keys; i++ {
		e := manifestEntry{
			Key:    fmt.Sprintf("pack-%04d", i),
			Dist:   dists[i%len(dists)],
			Seed:   *seed + uint64(i),
			Values: *values,
		}
		var res store.PutResult
		if *width == 32 {
			vals, gerr := workloads.GenFloat32(e.Dist, e.Values, e.Seed)
			if gerr != nil {
				return gerr
			}
			res, err = s.Put32(e.Key, vals)
		} else {
			vals, gerr := workloads.GenFloat64(e.Dist, e.Values, e.Seed)
			if gerr != nil {
				return gerr
			}
			res, err = s.Put64(e.Key, vals)
		}
		if err != nil {
			return err
		}
		fmt.Printf("packed %s: %d values (%s), %d blocks (%d lossless), ratio %.2f\n",
			e.Key, res.Values, e.Dist, res.Blocks, res.LosslessBlocks, res.Ratio)
		m.Entries = append(m.Entries, e)
	}

	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	mp := *manifestOut
	if mp == "" {
		mp = manifestPath(*dir)
	}
	if err := os.WriteFile(mp, append(mb, '\n'), 0o644); err != nil {
		return err
	}
	st := s.Stats()
	fmt.Printf("packed %d keys: %.2f:1 on disk, %d segments, %d flagged blocks\n",
		len(m.Entries), st.AchievedRatio, st.Segments, st.FlaggedBlocks)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	blocks := fs.Bool("blocks", false, "include the per-key block layout")
	var t1 float64
	cliutil.RegisterT1(fs, &t1)
	fs.Parse(args)
	if *dir == "" {
		return errors.New("inspect: -dir is required")
	}

	s, err := store.Open(store.Config{Dir: *dir, T1: t1})
	if err != nil {
		return err
	}
	defer s.Close()

	out := struct {
		store.Stats
		Blocks map[string][]store.BlockInfo `json:"blocks,omitempty"`
	}{Stats: s.Stats()}
	if *blocks {
		out.Blocks = make(map[string][]store.BlockInfo)
		for _, k := range s.Keys() {
			bi, err := s.BlockInfos(k)
			if err != nil {
				return err
			}
			out.Blocks[k] = bi
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required unless -addr)")
	addr := fs.String("addr", "", "verify through a live avrd/avrrouter at host:port instead of a local -dir")
	addrFile := fs.String("addr-file", "", "read -addr from this file (written by -addr-file on the daemon)")
	manifestIn := fs.String("manifest", "", "manifest path (default <dir>/manifest.json; required with -addr)")
	allowPartial := fs.Bool("allow-partial", false, "accept crash-truncated vectors (recovered prefix must still verify)")
	fs.Parse(args)
	if a, err := resolveAddr(*addr, *addrFile); err != nil {
		return fmt.Errorf("verify: %w", err)
	} else if a != "" {
		if *manifestIn == "" {
			return errors.New("verify: -manifest is required with -addr")
		}
		return verifyRemote(a, *manifestIn, *allowPartial)
	}
	if *dir == "" {
		return errors.New("verify: -dir or -addr is required")
	}
	mp := *manifestIn
	if mp == "" {
		mp = manifestPath(*dir)
	}

	mb, err := os.ReadFile(mp)
	if err != nil {
		return fmt.Errorf("verify: reading manifest (run pack first): %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return fmt.Errorf("verify: bad manifest: %w", err)
	}

	s, err := store.Open(store.Config{Dir: *dir, T1: m.T1})
	if err != nil {
		return err
	}
	defer s.Close()
	t1 := s.T1()

	var failures, partial int
	for _, e := range m.Entries {
		n, perr := verifyEntry(s, m.Width, t1, e, *allowPartial)
		if perr != nil {
			fmt.Printf("FAIL %s: %v\n", e.Key, perr)
			failures++
			continue
		}
		if n < e.Values {
			partial++
			fmt.Printf("ok   %s: %d/%d values (truncated by crash), all within t1\n", e.Key, n, e.Values)
		} else {
			fmt.Printf("ok   %s: %d values within t1=%g\n", e.Key, n, t1)
		}
	}
	if failures > 0 {
		return fmt.Errorf("verify: %d of %d keys failed", failures, len(m.Entries))
	}
	fmt.Printf("verify: %d keys ok (%d partial) at t1=%g\n", len(m.Entries), partial, t1)
	return nil
}

// verifyEntry checks one key against its regenerated ground truth and
// returns how many values were served.
func verifyEntry(s *store.Store, width int, t1 float64, e manifestEntry, allowPartial bool) (int, error) {
	v32, v64, w, err := s.Get(e.Key)
	incomplete := errors.Is(err, store.ErrIncomplete)
	if err != nil && !incomplete {
		return 0, err
	}
	if incomplete && !allowPartial {
		return 0, errors.New("vector incomplete (crash-truncated); rerun with -allow-partial to accept the prefix")
	}
	if w != width {
		return 0, fmt.Errorf("width %d on disk, manifest says %d", w, width)
	}

	infos, err := s.BlockInfos(e.Key)
	if err != nil {
		return 0, err
	}
	lossless := make(map[int]bool)
	for _, bi := range infos {
		if bi.Lossless {
			lossless[bi.Index] = true
		}
	}

	check := func(i int, got, want float64, exact bool) error {
		if lossless[i/store.BlockValues] {
			if !exact {
				return fmt.Errorf("value %d: lossless block not bit-exact", i)
			}
			return nil
		}
		if math.Abs(got-want) > t1*math.Abs(want)*(1+1e-9) {
			return fmt.Errorf("value %d: |%g - %g| beyond t1=%g", i, got, want, t1)
		}
		return nil
	}

	if width == 32 {
		want, gerr := workloads.GenFloat32(e.Dist, e.Values, e.Seed)
		if gerr != nil {
			return 0, gerr
		}
		for i := range v32 {
			if err := check(i, float64(v32[i]), float64(want[i]),
				math.Float32bits(v32[i]) == math.Float32bits(want[i])); err != nil {
				return 0, err
			}
		}
		return len(v32), nil
	}
	want, gerr := workloads.GenFloat64(e.Dist, e.Values, e.Seed)
	if gerr != nil {
		return 0, gerr
	}
	for i := range v64 {
		if err := check(i, v64[i], want[i],
			math.Float64bits(v64[i]) == math.Float64bits(want[i])); err != nil {
			return 0, err
		}
	}
	return len(v64), nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	key := fs.String("key", "", "key to query (required unless -check)")
	op := fs.String("op", "aggregate", "query op: aggregate, filter or downsample")
	lo := fs.Float64("lo", 0, "filter: inclusive lower bound")
	hi := fs.Float64("hi", 0, "filter: inclusive upper bound")
	check := fs.Bool("check", false, "verify every query op over every manifest key against regenerated ground truth")
	var t1 float64
	cliutil.RegisterT1(fs, &t1)
	fs.Parse(args)
	if *dir == "" {
		return errors.New("query: -dir is required")
	}

	if *check {
		return queryCheck(*dir, t1)
	}
	if *key == "" {
		return errors.New("query: -key is required (or -check)")
	}

	s, err := store.Open(store.Config{Dir: *dir, T1: t1})
	if err != nil {
		return err
	}
	defer s.Close()

	var res any
	switch *op {
	case "aggregate":
		res, err = s.QueryAggregate(*key)
	case "filter":
		res, err = s.QueryFilter(*key, *lo, *hi)
	case "downsample":
		res, err = s.QueryDownsample(*key)
	default:
		return fmt.Errorf("query: bad -op %q: want aggregate, filter or downsample", *op)
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// queryCheck cross-checks the compressed-domain query engine against
// the manifest ground truth: the same vectors verify regenerates
// value-by-value must also answer every query within the reported
// bounds — the offline counterpart of avrload -mode query.
func queryCheck(dir string, t1 float64) error {
	mb, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return fmt.Errorf("query: reading manifest (run pack first): %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return fmt.Errorf("query: bad manifest: %w", err)
	}
	if t1 == 0 {
		t1 = m.T1
	}
	s, err := store.Open(store.Config{Dir: dir, T1: t1})
	if err != nil {
		return err
	}
	defer s.Close()

	var failures int
	var touched, total int64
	for _, e := range m.Entries {
		if err := queryCheckEntry(s, m.Width, e, &touched, &total); err != nil {
			fmt.Printf("FAIL %s: %v\n", e.Key, err)
			failures++
		} else {
			fmt.Printf("ok   %s: aggregate, %d filter bands and downsample within bounds\n",
				e.Key, len(checkBands(0, 0)))
		}
	}
	if failures > 0 {
		return fmt.Errorf("query: %d of %d keys failed", failures, len(m.Entries))
	}
	frac := 0.0
	if total > 0 {
		frac = float64(touched) / float64(total)
	}
	fmt.Printf("query: %d keys ok, aggregates touched %d of %d raw bytes (%.4f)\n",
		len(m.Entries), touched, total, frac)
	return nil
}

// checkBands derives the filter ranges the check exercises from the
// vector's exact min/max.
func checkBands(min, max float64) [][2]float64 {
	span := max - min
	return [][2]float64{
		{min, max},
		{min + span/4, max - span/4},
		{min + span/2.1, min + span/1.9},
	}
}

func queryCheckEntry(s *store.Store, width int, e manifestEntry, touched, total *int64) error {
	vals := make([]float64, e.Values)
	if width == 32 {
		w32, err := workloads.GenFloat32(e.Dist, e.Values, e.Seed)
		if err != nil {
			return err
		}
		for i, v := range w32 {
			vals[i] = float64(v)
		}
	} else {
		w64, err := workloads.GenFloat64(e.Dist, e.Values, e.Seed)
		if err != nil {
			return err
		}
		copy(vals, w64)
	}
	var sum, min, max float64
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		sum += v
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	tol := func(b float64) float64 { return b*(1+1e-9) + 1e-300 }

	agg, err := s.QueryAggregate(e.Key)
	if err != nil {
		return err
	}
	if !agg.Complete {
		return errors.New("vector incomplete (crash-truncated)")
	}
	if agg.Count != int64(len(vals)) {
		return fmt.Errorf("count %d, want %d", agg.Count, len(vals))
	}
	if d := math.Abs(agg.Sum - sum); d > tol(agg.ErrorBound) {
		return fmt.Errorf("|sum %g - exact %g| = %g beyond bound %g", agg.Sum, sum, d, agg.ErrorBound)
	}
	slack := 1e-9*math.Abs(min) + 1e-300
	if agg.Min > min+slack || min > agg.Min+agg.MinErrorBound+slack {
		return fmt.Errorf("exact min %g outside [%g, +%g]", min, agg.Min, agg.MinErrorBound)
	}
	slack = 1e-9*math.Abs(max) + 1e-300
	if agg.Max < max-slack || max < agg.Max-agg.MaxErrorBound-slack {
		return fmt.Errorf("exact max %g outside [-%g, %g]", max, agg.MaxErrorBound, agg.Max)
	}
	*touched += agg.BytesTouched
	*total += agg.BytesTotal

	for _, b := range checkBands(min, max) {
		if !(b[0] <= b[1]) {
			continue
		}
		fr, err := s.QueryFilter(e.Key, b[0], b[1])
		if err != nil {
			return err
		}
		var exact int64
		for _, v := range vals {
			if b[0] <= v && v <= b[1] {
				exact++
			}
		}
		if fr.MatchesMin > exact || exact > fr.MatchesMax {
			return fmt.Errorf("filter [%g, %g]: exact %d outside bracket [%d, %d]",
				b[0], b[1], exact, fr.MatchesMin, fr.MatchesMax)
		}
	}

	ds, err := s.QueryDownsample(e.Key)
	if err != nil {
		return err
	}
	want := (len(vals) + 15) / 16
	if len(ds.Points) != want {
		return fmt.Errorf("downsample produced %d points, want %d", len(ds.Points), want)
	}
	for g := range ds.Points {
		var gs float64
		for j := g * 16; j < g*16+16; j++ {
			if j < len(vals) {
				gs += vals[j]
			} else {
				gs += vals[len(vals)-1] // codec padding convention
			}
		}
		if d := math.Abs(ds.Points[g] - gs/16); d > tol(ds.Bounds[g]) {
			return fmt.Errorf("downsample point %d: |%g - exact %g| beyond bound %g",
				g, ds.Points[g], gs/16, ds.Bounds[g])
		}
	}
	return nil
}

func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	var t1 float64
	cliutil.RegisterT1(fs, &t1)
	fs.Parse(args)
	if *dir == "" {
		return errors.New("compact: -dir is required")
	}

	s, err := store.Open(store.Config{Dir: *dir, T1: t1})
	if err != nil {
		return err
	}
	defer s.Close()

	start := time.Now()
	var passes int
	for {
		res, did, err := s.CompactOnce()
		if err != nil {
			return err
		}
		if !did {
			break
		}
		passes++
		fmt.Printf("compacted segment %d: moved %d frames (%d B), reclaimed %d B, recompress %d tried / %d won / %d skipped\n",
			res.Segment, res.FramesMoved, res.BytesMoved, res.BytesReclaimed,
			res.RecompressTried, res.RecompressWon, res.RecompressSkipped)
	}
	st := s.Stats()
	fmt.Printf("compact: %d passes in %s, debt now %.3f, %.2f:1 on disk\n",
		passes, time.Since(start).Round(time.Millisecond), st.CompactionDebt, st.AchievedRatio)
	return nil
}
