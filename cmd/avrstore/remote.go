package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"avr/internal/server"
	"avr/internal/store"
	"avr/internal/workloads"
)

// Remote pack/verify: the same manifest-driven ground truth as the
// local subcommands, but spoken over HTTP to a live avrd or avrrouter.
// Against a router, pack lands every key on two replicas and verify
// proves the read-any contract offline: whatever replica serves a key,
// every value must sit within the manifest t1.

// resolveAddr merges -addr and -addr-file.
func resolveAddr(addr, addrFile string) (string, error) {
	if addrFile == "" {
		return addr, nil
	}
	b, err := os.ReadFile(addrFile)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

func remoteClient() *http.Client {
	return &http.Client{Timeout: 60 * time.Second}
}

// packRemote generates the workload vectors and PUTs each one through
// the daemon, recording the manifest locally.
func packRemote(addr, manifestOut string, keys, values int, dist string, width int, seed uint64, t1 float64) error {
	base := "http://" + addr
	client := remoteClient()

	dists := []string{dist}
	if dist == "mixed-all" {
		dists = workloads.Distributions()
	}
	// The daemon quantizes thresholds onto the codec-pool grid; record
	// the same quantized t1 in the manifest so verify checks the bound
	// the server actually enforced.
	m := manifest{Width: width, T1: server.QuantizeT1(t1)}
	for i := 0; i < keys; i++ {
		e := manifestEntry{
			Key:    fmt.Sprintf("pack-%04d", i),
			Dist:   dists[i%len(dists)],
			Seed:   seed + uint64(i),
			Values: values,
		}
		payload, err := genPayload(e, width)
		if err != nil {
			return err
		}
		url := fmt.Sprintf("%s/v1/store/put?key=%s&width=%d", base, e.Key, width)
		req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("pack: put %s: %w", e.Key, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("pack: put %s: %d: %s", e.Key, resp.StatusCode, bytes.TrimSpace(body))
		}
		var res store.PutResult
		if err := json.Unmarshal(body, &res); err != nil {
			return fmt.Errorf("pack: put %s: bad response: %w", e.Key, err)
		}
		line := fmt.Sprintf("packed %s: %d values (%s), %d blocks (%d lossless), ratio %.2f",
			e.Key, res.Values, e.Dist, res.Blocks, res.LosslessBlocks, res.Ratio)
		if reps := resp.Header.Get("X-AVR-Replicas"); reps != "" {
			line += ", " + reps + " replicas"
		}
		fmt.Println(line)
		m.Entries = append(m.Entries, e)
	}

	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(manifestOut, append(mb, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("packed %d keys via %s, manifest %s (t1 %g)\n", len(m.Entries), addr, manifestOut, m.T1)
	return nil
}

// genPayload regenerates one manifest entry's raw little-endian bytes.
func genPayload(e manifestEntry, width int) ([]byte, error) {
	if width == 32 {
		vals, err := workloads.GenFloat32(e.Dist, e.Values, e.Seed)
		if err != nil {
			return nil, err
		}
		b := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
		}
		return b, nil
	}
	vals, err := workloads.GenFloat64(e.Dist, e.Values, e.Seed)
	if err != nil {
		return nil, err
	}
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b, nil
}

// verifyRemote checks every manifest key through the serving path:
// enumerate keys via /v1/store/key (fanned out across the shards on a
// router), then fetch each vector and bound-check it at the manifest
// t1. Remote verification cannot see the block table, so the lossless
// bit-exactness refinement of local verify does not apply — the t1
// bound is the contract the wire promises.
func verifyRemote(addr, manifestIn string, allowPartial bool) error {
	mb, err := os.ReadFile(manifestIn)
	if err != nil {
		return fmt.Errorf("verify: reading manifest (run pack first): %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return fmt.Errorf("verify: bad manifest: %w", err)
	}
	base := "http://" + addr
	client := remoteClient()

	// The key listing must cover every manifest key — on a router this
	// exercises the fan-out/union path and catches shards that lost
	// their data entirely.
	resp, err := client.Get(base + "/v1/store/key")
	if err != nil {
		return fmt.Errorf("verify: listing keys: %w", err)
	}
	var kl struct {
		Keys []string `json:"keys"`
	}
	kerr := json.NewDecoder(resp.Body).Decode(&kl)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || kerr != nil {
		return fmt.Errorf("verify: listing keys: status %d, err %v", resp.StatusCode, kerr)
	}
	live := make(map[string]bool, len(kl.Keys))
	for _, k := range kl.Keys {
		live[k] = true
	}

	var failures, partial int
	for _, e := range m.Entries {
		if !live[e.Key] {
			fmt.Printf("FAIL %s: missing from the served key listing\n", e.Key)
			failures++
			continue
		}
		n, incomplete, verr := verifyRemoteEntry(client, base, m, e, allowPartial)
		if verr != nil {
			fmt.Printf("FAIL %s: %v\n", e.Key, verr)
			failures++
			continue
		}
		if incomplete {
			partial++
			fmt.Printf("ok   %s: %d/%d values (truncated), all within t1\n", e.Key, n, e.Values)
		} else {
			fmt.Printf("ok   %s: %d values within t1=%g\n", e.Key, n, m.T1)
		}
	}
	if failures > 0 {
		return fmt.Errorf("verify: %d of %d keys failed via %s", failures, len(m.Entries), addr)
	}
	fmt.Printf("verify: %d keys ok (%d partial) via %s at t1=%g\n",
		len(m.Entries), partial, addr, m.T1)
	return nil
}

// verifyRemoteEntry fetches one key and checks it against regenerated
// ground truth. Returns the number of values served and whether the
// vector was a crash-truncated prefix (206).
func verifyRemoteEntry(client *http.Client, base string, m manifest, e manifestEntry, allowPartial bool) (int, bool, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/store/get?key=%s", base, e.Key))
	if err != nil {
		return 0, false, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return 0, false, rerr
	}
	incomplete := resp.StatusCode == http.StatusPartialContent
	if resp.StatusCode != http.StatusOK && !incomplete {
		return 0, false, fmt.Errorf("get: %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if incomplete && !allowPartial {
		return 0, false, errors.New("vector incomplete; rerun with -allow-partial to accept the prefix")
	}

	want, err := genPayload(e, m.Width)
	if err != nil {
		return 0, false, err
	}
	vw := m.Width / 8
	if len(body)%vw != 0 || len(body) > len(want) {
		return 0, false, fmt.Errorf("get returned %d bytes, want at most %d in %d-byte values",
			len(body), len(want), vw)
	}
	if !incomplete && len(body) != len(want) {
		return 0, false, fmt.Errorf("get returned %d bytes, want %d", len(body), len(want))
	}
	n := len(body) / vw
	for i := 0; i < n; i++ {
		var g, w float64
		if m.Width == 32 {
			g = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:])))
			w = float64(math.Float32frombits(binary.LittleEndian.Uint32(want[4*i:])))
		} else {
			g = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
			w = math.Float64frombits(binary.LittleEndian.Uint64(want[8*i:]))
		}
		if math.Abs(g-w) > m.T1*math.Abs(w)*(1+1e-9) {
			return 0, false, fmt.Errorf("value %d: |%g - %g| beyond t1=%g", i, g, w, m.T1)
		}
	}
	return n, incomplete, nil
}
