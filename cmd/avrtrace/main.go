// Command avrtrace runs one benchmark and emits a CSV time series of the
// memory system's behaviour — cycles, instructions, DRAM traffic, LLC
// misses and (for AVR) compression activity — sampled every N demand
// accesses. Useful for plotting how the designs diverge over a run.
//
// Usage:
//
//	avrtrace -bench heat -design AVR -every 100000 > heat_avr.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"avr/internal/sim"
	"avr/internal/workloads"
)

func main() {
	bench := flag.String("bench", "heat", "benchmark name")
	design := flag.String("design", "AVR", "memory-system design")
	scale := flag.String("scale", "small", "input scale: small or slice")
	every := flag.Uint64("every", 100000, "sample every N demand accesses")
	flag.Parse()

	d, err := sim.DesignByName(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sc := workloads.ScaleSmall
	cfg := sim.PresetSmall(d)
	if *scale == "slice" {
		sc = workloads.ScaleSlice
		cfg = sim.PresetSlice(d)
	}
	w, err := workloads.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sys := sim.New(cfg)
	fmt.Println("sample,cycles,instructions,dram_read_mb,dram_written_mb,compresses,decompresses")
	n := 0
	sys.SampleEvery = *every
	sys.Sampler = func(s *sim.System) {
		n++
		ds := s.Dram.Stats()
		var comp, decomp uint64
		if a := s.AVRLLC(); a != nil {
			st := a.Stats()
			comp, decomp = st.Compresses, st.Decompresses
		}
		fmt.Printf("%d,%d,%d,%.3f,%.3f,%d,%d\n",
			n, s.Core.Now(), s.Core.Instructions(),
			float64(ds.BytesRead)/1e6, float64(ds.BytesWritten)/1e6,
			comp, decomp)
	}
	w.Setup(sys, sc)
	sys.Prime()
	w.Run(sys)
	sys.Finish(*bench)
}
