// Command avrtrace runs one benchmark and streams an epoch time series
// of the memory system's behaviour — per-epoch deltas and cumulative
// totals of cycles, instructions, DRAM traffic, LLC misses and (for
// AVR) compression activity, one epoch every N demand accesses. Useful
// for plotting how the designs diverge over a run.
//
// Epoch deltas are exact: the final (partial) epoch includes the
// end-of-run flush, so per-counter sums over the series equal the
// totals avrsim reports for the same run.
//
// Usage:
//
//	avrtrace -bench heat -design AVR -every 100000 > heat_avr.csv
//	avrtrace -format jsonl | jq .ipc   # one JSON object per epoch
package main

import (
	"bufio"
	"flag"
	"os"

	"avr/internal/cliutil"
	"avr/internal/obs"
	"avr/internal/sim"
	"avr/internal/workloads"
)

func main() {
	f := cliutil.Register(flag.CommandLine)
	every := flag.Uint64("every", 100000, "epoch length in demand accesses")
	format := flag.String("format", "csv", "output format: csv or jsonl")
	flag.Parse()

	_, sc, cfg, err := f.ResolveRun()
	if err != nil {
		cliutil.Fatal(err)
	}
	w, err := workloads.ByName(f.Bench)
	if err != nil {
		cliutil.Fatal(err)
	}
	out := bufio.NewWriter(os.Stdout)
	ew, err := obs.NewEpochWriter(*format, out)
	if err != nil {
		cliutil.Fatal(err)
	}
	cliutil.StartDebug(f.DebugAddr)

	sys := sim.New(cfg)
	// Epochs stream through the sink as they complete; the ring only
	// needs to hold the one being handed over.
	rec := obs.NewRecorder(*every, 1)
	rec.SetSink(func(e obs.Epoch) {
		if err := ew.WriteEpoch(e); err != nil {
			cliutil.Fatal(err)
		}
	})
	sys.SetRecorder(rec)

	w.Setup(sys, sc)
	sys.Prime()
	w.Run(sys)
	sys.Finish(f.Bench)

	if err := ew.Flush(); err != nil {
		cliutil.Fatal(err)
	}
	if err := out.Flush(); err != nil {
		cliutil.Fatal(err)
	}
}
