// Command avrsim runs one benchmark on one memory-system design and
// prints the full statistics of the run.
//
// Usage:
//
//	avrsim -bench heat -design AVR [-scale small|slice] [-t1 0.03125]
//	avrsim -cache-dir .avrcache   # reuse results across invocations
//	avrsim -json                  # machine-readable result (with histograms)
//	avrsim -debug-addr :6060      # live expvar + pprof while running
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"time"

	"avr/internal/cliutil"
	"avr/internal/compress"
	"avr/internal/experiments"
	"avr/internal/sim"
)

func main() {
	f := cliutil.Register(flag.CommandLine)
	t1 := flag.Float64("t1", compress.DefaultThresholds().T1, "per-value error threshold T1 (T2 = T1/2)")
	cores := flag.Int("cores", 1, "simulate an n-core shared-LLC CMP (heat, kmeans, bscholes only)")
	cacheDir := flag.String("cache-dir", "", "persistent result cache directory; repeated runs skip simulation")
	manifestDir := flag.String("manifest-dir", "", "directory to write one JSON run manifest per completed run (optional)")
	jsonOut := flag.Bool("json", false, "print the full result as JSON (enables histogram collection)")
	flag.Parse()

	_, sc, cfg, err := f.ResolveRun()
	if err != nil {
		cliutil.Fatal(err)
	}
	cfg.Thresholds = compress.Thresholds{T1: *t1, T2: *t1 / 2}
	if *jsonOut {
		cfg.Histograms = true
	}
	cliutil.StartDebug(f.DebugAddr)

	runner := experiments.NewRunner(sc)
	runner.CacheDir = *cacheDir
	runner.ManifestDir = *manifestDir

	if *cores > 1 {
		runMulticore(runner, f.Bench, cfg, *cores, *jsonOut)
		return
	}

	start := time.Now()
	e, err := runner.RunConfig(f.Bench, cfg)
	if err != nil {
		cliutil.Fatal(err)
	}
	wall := time.Since(start)
	r := e.Result

	if *jsonOut {
		printJSON(r)
		return
	}

	fmt.Printf("benchmark        %s (%s scale)\n", r.Benchmark, sc)
	fmt.Printf("design           %s\n", r.Design)
	fmt.Printf("simulated cycles %d (%.2f ms at 3.2 GHz)\n", r.Cycles, float64(r.Cycles)/3.2e6)
	fmt.Printf("instructions     %d (IPC %.2f)\n", r.Instructions, r.IPC)
	if runner.Simulations() == 0 {
		fmt.Printf("wall time        %v (cached)\n", wall.Round(time.Millisecond))
	} else {
		fmt.Printf("wall time        %v\n", wall.Round(time.Millisecond))
	}
	fmt.Printf("AMAT             %.2f cycles\n", r.AMAT)
	fmt.Printf("LLC requests     %d, misses %d (MPKI %.2f)\n", r.LLCRequests, r.LLCMisses, r.MPKI)
	fmt.Printf("DRAM traffic     %.2f MB read, %.2f MB written (%.2f MB approx)\n",
		float64(r.DRAM.BytesRead)/1e6, float64(r.DRAM.BytesWritten)/1e6, float64(r.DRAM.ApproxBytes)/1e6)
	fmt.Printf("DRAM row hits    %d / %d accesses\n", r.DRAM.RowHits, r.DRAM.Reads+r.DRAM.Writes)
	fmt.Printf("energy           %.4f J (core %.4f, L1+L2 %.4f, LLC %.4f, DRAM %.4f, compressor %.6f)\n",
		r.Energy.Total(), r.Energy.Core, r.Energy.L1L2, r.Energy.LLC, r.Energy.DRAM, r.Energy.Compressor)
	if r.CMTTrafficBytes > 0 {
		fmt.Printf("CMT traffic      %.3f MB\n", float64(r.CMTTrafficBytes)/1e6)
	}
	if r.Design == sim.AVR {
		fmt.Printf("compression      ratio %.1f:1, footprint %.1f%% of baseline\n",
			r.CompressionRatio, r.FootprintFraction*100)
	}
	if st := r.AVRStats; st != nil {
		fmt.Printf("AVR requests     miss %d, uncompressed-hit %d, dbuf-hit %d, compressed-hit %d\n",
			st.ApproxMiss, st.ApproxUncompHit, st.ApproxDBUFHit, st.ApproxCompHit)
		fmt.Printf("AVR evictions    recompress %d, lazy-wb %d, fetch+recompress %d, uncompressed-wb %d\n",
			st.EvRecompress, st.EvLazyWB, st.EvFetchRecompress, st.EvUncompWB)
		fmt.Printf("AVR compressor   %d compressions, %d decompressions, %d PFE prefetches\n",
			st.Compresses, st.Decompresses, st.Prefetches)
	}
	if r.DgDedups > 0 {
		fmt.Printf("dedups           %d\n", r.DgDedups)
	}
}

// printJSON emits any result as indented JSON on stdout.
func printJSON(v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		cliutil.Fatal(err)
	}
	fmt.Println(string(data))
}

// runMulticore executes the benchmark on an n-core shared-resource CMP
// and prints the aggregate statistics.
func runMulticore(runner *experiments.Runner, bench string, cfg sim.Config, n int, jsonOut bool) {
	// Shared-resource CMP: undo the per-core slicing.
	cfg.LLCBytes *= 4
	cfg.DRAMChannels = 2
	cfg.DRAMSliceDiv = 1
	start := time.Now()
	r, err := runner.RunMultiConfig(bench, cfg, n)
	if err != nil {
		cliutil.Fatal(err)
	}
	if jsonOut {
		printJSON(r)
		return
	}
	fmt.Printf("benchmark        %s on %d cores (shared %d kB LLC)\n", bench, n, cfg.LLCBytes>>10)
	fmt.Printf("design           %s\n", r.Design)
	fmt.Printf("simulated cycles %d (slowest core)\n", r.Cycles)
	fmt.Printf("per-core cycles  %v\n", r.PerCore)
	fmt.Printf("instructions     %d total (aggregate IPC %.2f)\n", r.Instructions, r.Result.IPC)
	fmt.Printf("wall time        %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("DRAM traffic     %.2f MB read, %.2f MB written\n",
		float64(r.Result.DRAM.BytesRead)/1e6, float64(r.Result.DRAM.BytesWritten)/1e6)
	if r.Result.Design == sim.AVR {
		fmt.Printf("compression      ratio %.1f:1\n", r.Result.CompressionRatio)
	}
}
