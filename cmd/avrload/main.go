// Command avrload drives an avrd instance with closed-loop concurrent
// traffic and reports the serving metrics that matter for capacity
// planning: throughput, latency percentiles, achieved compression
// ratio, and shed rate. Each connection generates a realistic dataset
// (internal/workloads generators), then loops encode→decode against
// the daemon, verifying every response byte-for-byte against a local
// codec — a load test that doubles as an end-to-end corruption check.
//
// Usage:
//
//	avrload -addr localhost:8080 -c 32 -duration 30s -values 4096 -dist heat
//	avrload -addr-file /tmp/avrd.addr -c 8 -duration 2s   # scripted (CI smoke)
//
// With -mode store the loop targets the persistent block store instead
// (avrd -store-dir): each connection owns one key and loops put→get,
// verifying every returned value is within the error threshold of what
// it stored — approximate durability checked end to end.
//
// With -mode query each connection stores its vector once and then
// loops compressed-domain queries (/v1/store/query): aggregate, range
// filter and downsample in rotation. Every response is checked against
// ground truth recomputed from the generated values: |approx − exact|
// must be within the response's own error_bound, filter brackets must
// contain the exact match count, and each downsampled point must be
// within its per-point bound — any violation counts as corruption and
// fails the run. Aggregate responses also feed a traffic account
// (bytes_touched / bytes_total); -maxtraffic turns the budget into a
// hard assertion for responses served purely from AVR blocks.
//
// With -mode storehot the loop reads a shared key space seeded once up
// front: each connection samples keys from a Zipfian popularity curve
// (a few keys absorb most reads) with periodic sequential scan phases
// over the whole space — the access pattern the summary-first read
// cache and its stride prefetcher are built for. The summary reports
// the cache hit rate and a hit-vs-miss latency split, classified per
// response from the X-AVR-Cache header avrd stamps when -cache-bytes
// is on.
//
// With -mode cluster the loop targets an avrrouter instead: each
// connection owns -batch keys and loops batched mput→mget round-trips
// (/v1/store/mput, /v1/store/mget), bound-checking every returned
// value. Because the check is client-side at t1, a node killed mid-run
// must not produce a single corrupt count if the router's replication
// and read-any failover work — the smoke test leans on exactly this.
//
// Every summary also breaks server-side latency down by pipeline stage
// (queue wait, codec pool checkout, encode/decode kernel, segment I/O,
// lock wait, query walk), rebuilt client-side from the X-AVR-Stage-*
// headers the daemon stamps on each response — so one load run shows
// where the p99 actually goes.
//
// Exit status: 0 on a clean run; 1 when no request succeeded or any
// response mismatched the local codec / exceeded the error bound
// (corruption).
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"avr"
	"avr/internal/cliutil"
	"avr/internal/server"
	"avr/internal/store"
	"avr/internal/trace"
	"avr/internal/workloads"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "avrd address (host:port)")
	addrFile := flag.String("addr-file", "", "read the avrd address from this file (written by avrd -addr-file)")
	conc := flag.Int("c", 32, "concurrent connections")
	duration := flag.Duration("duration", 30*time.Second, "load duration")
	values := flag.Int("values", 4096, "values per request")
	dist := flag.String("dist", "heat", "value distribution: "+strings.Join(workloads.Distributions(), ", "))
	width := flag.Int("width", 32, "value width in bits: 32 or 64")
	verify := flag.Bool("verify", true, "check every response byte-for-byte against a local codec")
	mode := flag.String("mode", "codec", "traffic shape: codec (encode→decode), store (put→get against /v1/store), storehot (Zipfian re-reads of a shared key space, cache hit-rate report), query (compressed-domain queries against /v1/store/query), or cluster (batched mput→mget against an avrrouter)")
	batch := flag.Int("batch", 8, "cluster mode: keys per batched mput/mget request")
	hotKeys := flag.Int("hotkeys", 64, "storehot mode: distinct keys in the shared space")
	maxTraffic := flag.Float64("maxtraffic", 0, "query mode: fail pure-AVR aggregate responses whose bytes_touched/bytes_total exceeds this fraction (0 = report only)")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON (for recorded baselines)")
	var t1 float64
	cliutil.RegisterT1(flag.CommandLine, &t1)
	flag.Parse()

	if *addrFile != "" {
		b, err := os.ReadFile(*addrFile)
		if err != nil {
			cliutil.Fatal(err)
		}
		*addr = strings.TrimSpace(string(b))
	}
	if *width != 32 && *width != 64 {
		cliutil.Fatal(fmt.Errorf("bad -width %d: want 32 or 64", *width))
	}
	switch *mode {
	case "codec", "store", "storehot", "query", "cluster":
	default:
		cliutil.Fatal(fmt.Errorf("bad -mode %q: want codec, store, storehot, query or cluster", *mode))
	}
	if *mode == "cluster" && *batch < 1 {
		cliutil.Fatal(fmt.Errorf("bad -batch %d: want >= 1", *batch))
	}
	if *mode == "storehot" && *hotKeys < 2 {
		cliutil.Fatal(fmt.Errorf("bad -hotkeys %d: want >= 2", *hotKeys))
	}
	base := "http://" + *addr

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * *conc,
			MaxIdleConnsPerHost: 2 * *conc,
		},
	}

	// One dataset and local-codec expectation per connection, prepared
	// before the clock starts.
	specs := make([]*workerSpec, *conc)
	for i := range specs {
		sp, err := newWorkerSpec(*dist, *values, *width, t1, uint64(i)+1)
		if err != nil {
			cliutil.Fatal(err)
		}
		sp.key = fmt.Sprintf("load-%d", i)
		specs[i] = sp
	}

	// storehot reads a shared key space: one spec per key, seeded with a
	// put each before the clock starts so the run measures reads only.
	var keySpace []*workerSpec
	if *mode == "storehot" {
		keySpace = make([]*workerSpec, *hotKeys)
		seedRes := &workerResult{}
		for k := range keySpace {
			sp, err := newWorkerSpec(*dist, *values, *width, t1, uint64(k)+1)
			if err != nil {
				cliutil.Fatal(err)
			}
			sp.key = fmt.Sprintf("hot-%d", k)
			keySpace[k] = sp
			putURL := fmt.Sprintf("%s/v1/store/put?key=%s&width=%d", base, sp.key, sp.width)
			if _, ok := sp.post(client, putURL, sp.payload, seedRes); !ok {
				cliutil.Fatal(fmt.Errorf("seeding storehot key %s failed", sp.key))
			}
		}
	}

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	results := make([]*workerResult, *conc)
	start := time.Now()
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp *workerSpec) {
			defer wg.Done()
			switch *mode {
			case "store":
				results[i] = sp.runStore(client, base, deadline, *verify)
			case "storehot":
				results[i] = runStoreHot(client, base, deadline, *verify, keySpace, uint64(i)+1)
			case "query":
				results[i] = sp.runQuery(client, base, deadline, *maxTraffic)
			case "cluster":
				results[i] = sp.runCluster(client, base, deadline, *verify, *batch)
			default:
				results[i] = sp.run(client, base, deadline, *verify)
			}
		}(i, sp)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := summarize(results, elapsed, *conc, *values, *width, *dist, t1)
	sum.Mode = *mode
	if *mode == "cluster" {
		// Throughput counts batched round-trips; keys/s is the comparable
		// number against single-key store mode.
		sum.Batch = *batch
		sum.KeysPerSec = sum.Throughput * float64(*batch)
	}
	if *mode == "store" || *mode == "storehot" || *mode == "query" {
		// The wire accounting cannot see the stored size (puts and gets
		// both move raw bytes); ask the daemon for the achieved ratio.
		sum.EncodeRatio = fetchStoreRatio(client, base)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(sum)
	} else {
		sum.print(base)
	}
	if sum.OK == 0 || sum.Corrupt > 0 {
		os.Exit(1)
	}
}

// workerSpec is one connection's dataset plus the local-codec ground
// truth its responses are verified against.
type workerSpec struct {
	t1      float64
	t1eff   float64 // resolved threshold (default applied) for bound checks
	key     string  // store-mode key owned by this connection
	width   int
	payload []byte // raw little-endian values (encode request body)
	wantEnc []byte // local Codec.Encode of payload
	wantDec []byte // raw little-endian bytes of local Decode(wantEnc)
}

func newWorkerSpec(dist string, values, width int, t1 float64, seed uint64) (*workerSpec, error) {
	sp := &workerSpec{t1: t1, width: width}
	// The daemon quantizes thresholds onto the codec-pool grid; the
	// local reference codec must do the same or byte-verification fails
	// for off-grid -t1 values.
	sp.t1eff = server.QuantizeT1(t1)
	c := avr.NewCodec(sp.t1eff)
	if width == 32 {
		vals, err := workloads.GenFloat32(dist, values, seed)
		if err != nil {
			return nil, err
		}
		sp.payload = make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(sp.payload[4*i:], math.Float32bits(v))
		}
		sp.wantEnc, err = c.Encode(vals)
		if err != nil {
			return nil, err
		}
		dec, err := c.Decode(sp.wantEnc)
		if err != nil {
			return nil, err
		}
		sp.wantDec = make([]byte, 4*len(dec))
		for i, v := range dec {
			binary.LittleEndian.PutUint32(sp.wantDec[4*i:], math.Float32bits(v))
		}
	} else {
		vals, err := workloads.GenFloat64(dist, values, seed)
		if err != nil {
			return nil, err
		}
		sp.payload = make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(sp.payload[8*i:], math.Float64bits(v))
		}
		sp.wantEnc, err = c.Encode64(vals)
		if err != nil {
			return nil, err
		}
		dec, err := c.Decode64(sp.wantEnc)
		if err != nil {
			return nil, err
		}
		sp.wantDec = make([]byte, 8*len(dec))
		for i, v := range dec {
			binary.LittleEndian.PutUint64(sp.wantDec[8*i:], math.Float64bits(v))
		}
	}
	return sp, nil
}

// workerResult accumulates one connection's counts and latencies.
type workerResult struct {
	ok, shed, errs, corrupt int64
	bytesUp, bytesDown      int64
	touched, total          int64     // query mode: aggregate traffic account
	lat                     []float64 // seconds per successful request
	// storehot mode: per-response cache verdicts from X-AVR-Cache, with
	// the latency distribution split by verdict so the summary can show
	// what a hit buys over a miss.
	cacheHits, cacheMisses, cachePrefetch int64
	latHit, latMiss                       []float64
	// stageLat collects the per-stage durations (seconds) the daemon
	// advertises on each response via X-AVR-Stage-* headers, indexed by
	// trace.Stage.
	stageLat [trace.NumStages][]float64
}

// recordStages harvests the per-stage duration headers off one
// successful response.
func (res *workerResult) recordStages(h http.Header) {
	for st := 0; st < trace.NumStages; st++ {
		vals, ok := h[trace.HeaderKey(trace.Stage(st))]
		if !ok || len(vals) == 0 {
			continue
		}
		ns, err := strconv.ParseInt(vals[0], 10, 64)
		if err != nil || ns <= 0 {
			continue
		}
		res.stageLat[st] = append(res.stageLat[st], float64(ns)/1e9)
	}
}

// run loops encode→decode against the daemon until the deadline.
func (sp *workerSpec) run(client *http.Client, base string, deadline time.Time, verify bool) *workerResult {
	res := &workerResult{}
	encURL := fmt.Sprintf("%s/v1/encode?width=%d", base, sp.width)
	if sp.t1 > 0 {
		encURL += fmt.Sprintf("&t1=%g", sp.t1)
	}
	decURL := base + "/v1/decode"
	for time.Now().Before(deadline) {
		enc, ok := sp.post(client, encURL, sp.payload, res)
		if !ok {
			continue
		}
		if verify && !bytes.Equal(enc, sp.wantEnc) {
			res.corrupt++
			continue
		}
		dec, ok := sp.post(client, decURL, enc, res)
		if !ok {
			continue
		}
		if verify && !bytes.Equal(dec, sp.wantDec) {
			res.corrupt++
		}
	}
	return res
}

// runStore loops put→get against the block store until the deadline,
// checking every returned value against the stored one at the error
// threshold. Lossless-fallback blocks come back exact, AVR blocks within
// t1, so one bound covers both.
func (sp *workerSpec) runStore(client *http.Client, base string, deadline time.Time, verify bool) *workerResult {
	res := &workerResult{}
	putURL := fmt.Sprintf("%s/v1/store/put?key=%s&width=%d", base, sp.key, sp.width)
	getURL := fmt.Sprintf("%s/v1/store/get?key=%s", base, sp.key)
	for time.Now().Before(deadline) {
		if _, ok := sp.post(client, putURL, sp.payload, res); !ok {
			continue
		}
		got, ok := sp.get(client, getURL, res)
		if !ok {
			continue
		}
		if verify && !sp.withinBound(got) {
			res.corrupt++
		}
	}
	return res
}

// runCluster loops batched mput→mget rounds against an avrrouter: this
// connection owns -batch keys, writes them all in one round-trip, reads
// them all back in another, and bound-checks every returned value. The
// client-side t1 check is what makes the router's read-any semantics
// testable: whichever replica served a key, the value must still be
// within the threshold of what was stored — so a mid-run node kill must
// produce zero corrupt counts if replication and failover work.
func (sp *workerSpec) runCluster(client *http.Client, base string, deadline time.Time, verify bool, batch int) *workerResult {
	res := &workerResult{}
	items := make([]server.BatchPutItem, batch)
	keys := make([]string, batch)
	for j := range items {
		keys[j] = fmt.Sprintf("%s-%d", sp.key, j)
		items[j] = server.BatchPutItem{Key: keys[j], Width: sp.width, Data: sp.payload}
	}
	pb, err := json.Marshal(server.BatchPutRequest{Items: items})
	if err != nil {
		res.errs++
		return res
	}
	gb, err := json.Marshal(server.BatchGetRequest{Keys: keys})
	if err != nil {
		res.errs++
		return res
	}
	mputURL := base + "/v1/store/mput"
	mgetURL := base + "/v1/store/mget"

	for time.Now().Before(deadline) {
		out, ok := sp.post(client, mputURL, pb, res)
		if !ok {
			continue
		}
		var pres server.BatchPutResult
		if json.Unmarshal(out, &pres) != nil {
			res.errs++
			continue
		}
		for _, pr := range pres.Results {
			if !pr.OK {
				// A per-key write failure is an availability event, not
				// corruption: the bound check below decides correctness.
				res.errs++
			}
		}

		out, ok = sp.post(client, mgetURL, gb, res)
		if !ok {
			continue
		}
		var gres server.BatchGetResult
		if json.Unmarshal(out, &gres) != nil {
			res.errs++
			continue
		}
		for _, gr := range gres.Results {
			if !gr.OK {
				res.errs++
				continue
			}
			if verify && !sp.withinBound(gr.Data) {
				res.corrupt++
			}
		}
	}
	return res
}

// runStoreHot loops reads over the shared storehot key space: mostly
// Zipf-sampled re-reads (rank 0 is the hottest key), with a full
// sequential scan of the space every scanEvery iterations — the phase
// mix the read cache and stride prefetcher are built for. Each response
// is bound-checked against the seeded payload and classified by its
// X-AVR-Cache verdict.
func runStoreHot(client *http.Client, base string, deadline time.Time, verify bool, keySpace []*workerSpec, seed uint64) *workerResult {
	const scanEvery = 40 // Zipf reads between sequential scan phases
	res := &workerResult{}
	rng := rand.New(rand.NewSource(int64(seed)))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(keySpace)-1))
	readOne := func(sp *workerSpec) {
		url := fmt.Sprintf("%s/v1/store/get?key=%s", base, sp.key)
		got, ok := sp.getCacheSplit(client, url, res)
		if ok && verify && !sp.withinBound(got) {
			res.corrupt++
		}
	}
	for i := 0; time.Now().Before(deadline); i++ {
		if i > 0 && i%scanEvery == 0 {
			for k := 0; k < len(keySpace) && time.Now().Before(deadline); k++ {
				readOne(keySpace[k])
			}
			continue
		}
		readOne(keySpace[zipf.Uint64()])
	}
	return res
}

// getCacheSplit is get plus the storehot bookkeeping: the X-AVR-Cache
// verdict counters and the hit-vs-miss latency split. A missing header
// (cache disabled server-side) counts as a miss, so the hit rate reads
// zero rather than lying.
func (sp *workerSpec) getCacheSplit(client *http.Client, url string, res *workerResult) ([]byte, bool) {
	t0 := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		res.errs++
		time.Sleep(10 * time.Millisecond)
		return nil, false
	}
	out, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK && rerr == nil:
		lat := time.Since(t0).Seconds()
		res.ok++
		res.lat = append(res.lat, lat)
		res.bytesDown += int64(len(out))
		res.recordStages(resp.Header)
		switch resp.Header.Get("X-AVR-Cache") {
		case "hit":
			res.cacheHits++
			res.latHit = append(res.latHit, lat)
		case "prefetch":
			res.cacheHits++
			res.cachePrefetch++
			res.latHit = append(res.latHit, lat)
		default:
			res.cacheMisses++
			res.latMiss = append(res.latMiss, lat)
		}
		return out, true
	case resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable:
		res.shed++
		time.Sleep(time.Millisecond)
	default:
		res.errs++
	}
	return nil, false
}

// runQuery stores the vector once, then loops compressed-domain queries
// in rotation (aggregate → filter → downsample), checking every answer
// against ground truth recomputed from the generated values. A bound
// violation is corruption: the whole point of the query engine is that
// its error bars are guarantees, not estimates.
func (sp *workerSpec) runQuery(client *http.Client, base string, deadline time.Time, maxTraffic float64) *workerResult {
	res := &workerResult{}
	putURL := fmt.Sprintf("%s/v1/store/put?key=%s&width=%d", base, sp.key, sp.width)
	for {
		if _, ok := sp.post(client, putURL, sp.payload, res); ok {
			break
		}
		if !time.Now().Before(deadline) {
			return res
		}
	}
	// Don't let the seeding put distort the query latency distribution.
	res.ok, res.lat = 0, res.lat[:0]
	for st := range res.stageLat {
		res.stageLat[st] = res.stageLat[st][:0]
	}

	gt := sp.queryGroundTruth()
	span := gt.max - gt.min
	bands := [][2]float64{
		{gt.min, gt.max},
		{gt.min + span/4, gt.max - span/4},
		{gt.min + span/2.1, gt.min + span/1.9},
	}
	aggURL := fmt.Sprintf("%s/v1/store/query?key=%s", base, sp.key)
	dsURL := fmt.Sprintf("%s/v1/store/query?key=%s&op=downsample", base, sp.key)

	for i := 0; time.Now().Before(deadline); i++ {
		switch i % 3 {
		case 0:
			body, ok := sp.get(client, aggURL, res)
			if !ok {
				continue
			}
			var agg store.AggregateResult
			if json.Unmarshal(body, &agg) != nil || !sp.checkAggregate(agg, gt) {
				res.corrupt++
				continue
			}
			res.touched += agg.BytesTouched
			res.total += agg.BytesTotal
			// The traffic budget only has teeth on vectors served purely
			// from AVR-compressed blocks: raw and lossless records are
			// full-size by construction.
			if maxTraffic > 0 && agg.BlocksRaw == 0 && agg.BlocksLossless == 0 &&
				float64(agg.BytesTouched) > maxTraffic*float64(agg.BytesTotal) {
				res.corrupt++
			}
		case 1:
			b := bands[(i/3)%len(bands)]
			if !(b[0] <= b[1]) {
				continue
			}
			url := fmt.Sprintf("%s/v1/store/query?key=%s&op=filter&lo=%g&hi=%g",
				base, sp.key, b[0], b[1])
			body, ok := sp.get(client, url, res)
			if !ok {
				continue
			}
			var fr store.FilterResult
			if json.Unmarshal(body, &fr) != nil || !sp.checkFilter(fr, gt) {
				res.corrupt++
			}
		case 2:
			body, ok := sp.get(client, dsURL, res)
			if !ok {
				continue
			}
			var ds store.DownsampleResult
			if json.Unmarshal(body, &ds) != nil || !sp.checkDownsample(ds, gt) {
				res.corrupt++
			}
		}
	}
	return res
}

// loadGroundTruth is the exact answer set the query responses are
// checked against, recomputed from the generated values the same way
// the executor accumulates (float64, index order).
type loadGroundTruth struct {
	vals     []float64
	sum      float64
	min, max float64
	points   []float64 // padded 16→1 group means
}

func (sp *workerSpec) queryGroundTruth() loadGroundTruth {
	n := len(sp.payload) / (sp.width / 8)
	gt := loadGroundTruth{
		vals: make([]float64, n),
		min:  math.Inf(1), max: math.Inf(-1),
	}
	for i := range gt.vals {
		var v float64
		if sp.width == 32 {
			v = float64(math.Float32frombits(binary.LittleEndian.Uint32(sp.payload[4*i:])))
		} else {
			v = math.Float64frombits(binary.LittleEndian.Uint64(sp.payload[8*i:]))
		}
		gt.vals[i] = v
		gt.sum += v
		gt.min = math.Min(gt.min, v)
		gt.max = math.Max(gt.max, v)
	}
	for g := 0; g*16 < n; g++ {
		var s float64
		for j := g * 16; j < g*16+16; j++ {
			if j < n {
				s += gt.vals[j]
			} else {
				s += gt.vals[n-1] // codec padding convention
			}
		}
		gt.points = append(gt.points, s/16)
	}
	return gt
}

// boundTol widens a reported bound by the comparison's own float slack.
func boundTol(b float64) float64 { return b*(1+1e-9) + 1e-300 }

func (sp *workerSpec) checkAggregate(a store.AggregateResult, gt loadGroundTruth) bool {
	if !a.Complete || a.Count != int64(len(gt.vals)) {
		return false
	}
	if math.Abs(a.Sum-gt.sum) > boundTol(a.ErrorBound) {
		return false
	}
	mean := gt.sum / float64(a.Count)
	if math.Abs(a.Mean-mean) > boundTol(a.MeanErrorBound) {
		return false
	}
	slack := 1e-9*math.Abs(gt.min) + 1e-300
	if a.Min > gt.min+slack || gt.min > a.Min+a.MinErrorBound+slack {
		return false
	}
	slack = 1e-9*math.Abs(gt.max) + 1e-300
	if a.Max < gt.max-slack || gt.max < a.Max-a.MaxErrorBound-slack {
		return false
	}
	return true
}

func (sp *workerSpec) checkFilter(f store.FilterResult, gt loadGroundTruth) bool {
	if !f.Complete {
		return false
	}
	var exact int64
	for _, v := range gt.vals {
		if f.Lo <= v && v <= f.Hi {
			exact++
		}
	}
	return f.MatchesMin <= exact && exact <= f.MatchesMax &&
		f.Matches-exact <= f.ErrorBound && exact-f.Matches <= f.ErrorBound
}

func (sp *workerSpec) checkDownsample(d store.DownsampleResult, gt loadGroundTruth) bool {
	if !d.Complete || len(d.Points) != len(gt.points) || len(d.Bounds) != len(d.Points) {
		return false
	}
	for g := range d.Points {
		if math.Abs(d.Points[g]-gt.points[g]) > boundTol(d.Bounds[g]) {
			return false
		}
	}
	return true
}

// get fetches one stored vector, with the same outcome classification as
// post.
func (sp *workerSpec) get(client *http.Client, url string, res *workerResult) ([]byte, bool) {
	t0 := time.Now()
	resp, err := client.Get(url)
	if err != nil {
		res.errs++
		time.Sleep(10 * time.Millisecond)
		return nil, false
	}
	out, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	// A 206 (torn vector) is corruption here: this process wrote the
	// vector moments ago and nothing crashed.
	case resp.StatusCode == http.StatusOK && rerr == nil:
		res.ok++
		res.lat = append(res.lat, time.Since(t0).Seconds())
		res.bytesDown += int64(len(out))
		res.recordStages(resp.Header)
		return out, true
	case resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable:
		res.shed++
		time.Sleep(time.Millisecond)
	default:
		res.errs++
	}
	return nil, false
}

// withinBound checks a store get response value-by-value against the
// put payload: same length, every value within the relative error
// threshold.
func (sp *workerSpec) withinBound(got []byte) bool {
	if len(got) != len(sp.payload) {
		return false
	}
	n := len(got) / (sp.width / 8)
	for i := 0; i < n; i++ {
		var g, w float64
		if sp.width == 32 {
			g = float64(math.Float32frombits(binary.LittleEndian.Uint32(got[4*i:])))
			w = float64(math.Float32frombits(binary.LittleEndian.Uint32(sp.payload[4*i:])))
		} else {
			g = math.Float64frombits(binary.LittleEndian.Uint64(got[8*i:]))
			w = math.Float64frombits(binary.LittleEndian.Uint64(sp.payload[8*i:]))
		}
		if math.Abs(g-w) > sp.t1eff*math.Abs(w)*(1+1e-9) {
			return false
		}
	}
	return true
}

// fetchStoreRatio reads the achieved compression ratio from the
// daemon's store stats (0 when unavailable).
func fetchStoreRatio(client *http.Client, base string) float64 {
	resp, err := client.Get(base + "/v1/store/stats")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	var st struct {
		AchievedRatio float64 `json:"achieved_ratio"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return 0
	}
	return st.AchievedRatio
}

// post sends one request and classifies the outcome: (body, true) on
// 200, shed/error counting otherwise.
func (sp *workerSpec) post(client *http.Client, url string, body []byte, res *workerResult) ([]byte, bool) {
	t0 := time.Now()
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		res.errs++
		time.Sleep(10 * time.Millisecond) // avoid hot-looping a dead server
		return nil, false
	}
	out, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK && rerr == nil:
		res.ok++
		res.lat = append(res.lat, time.Since(t0).Seconds())
		res.bytesUp += int64(len(body))
		res.bytesDown += int64(len(out))
		res.recordStages(resp.Header)
		return out, true
	case resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable:
		res.shed++
		time.Sleep(time.Millisecond) // brief backoff under shed
	default:
		res.errs++
	}
	return nil, false
}

// summary is the final report (and the -json document).
type summary struct {
	Addr        string  `json:"-"`
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	Duration    float64 `json:"duration_seconds"`
	Values      int     `json:"values_per_request"`
	Width       int     `json:"width_bits"`
	Dist        string  `json:"dist"`
	T1          float64 `json:"t1"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	Corrupt     int64   `json:"corrupt"`
	ShedRate    float64 `json:"shed_rate"`
	Throughput  float64 `json:"requests_per_second"`
	MBpsUp      float64 `json:"mb_per_second_up"`
	MBpsDown    float64 `json:"mb_per_second_down"`
	P50ms       float64 `json:"p50_ms"`
	P90ms       float64 `json:"p90_ms"`
	P99ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	EncodeRatio float64 `json:"encode_ratio"`
	// Cluster mode: keys per batched request, and batch-adjusted key
	// throughput (requests_per_second × batch_size) — the number
	// comparable against single-key store mode.
	Batch      int     `json:"batch_size,omitempty"`
	KeysPerSec float64 `json:"keys_per_second,omitempty"`
	// Storehot mode: per-response cache verdicts (X-AVR-Cache) and the
	// latency split between cache hits and misses.
	CacheHits     int64   `json:"cache_hits,omitempty"`
	CacheMisses   int64   `json:"cache_misses,omitempty"`
	CachePrefetch int64   `json:"cache_prefetch,omitempty"`
	CacheHitRate  float64 `json:"cache_hit_rate,omitempty"`
	HitP50ms      float64 `json:"hit_p50_ms,omitempty"`
	HitP99ms      float64 `json:"hit_p99_ms,omitempty"`
	MissP50ms     float64 `json:"miss_p50_ms,omitempty"`
	MissP99ms     float64 `json:"miss_p99_ms,omitempty"`
	// Query mode: encoded bytes the executor read vs the raw bytes its
	// aggregate responses covered, and their ratio.
	QueryBytesTouched int64   `json:"query_bytes_touched,omitempty"`
	QueryBytesTotal   int64   `json:"query_bytes_total,omitempty"`
	QueryTraffic      float64 `json:"query_traffic,omitempty"`
	// Stages breaks server-side latency down by pipeline stage, built
	// from the X-AVR-Stage-* headers on every successful response. Keys
	// are the trace stage wire names; stages the traffic never touched
	// are omitted.
	Stages map[string]loadStage `json:"stages,omitempty"`
}

// loadStage is one pipeline stage's latency digest in the summary.
type loadStage struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50ms  float64 `json:"p50_ms"`
	P99ms  float64 `json:"p99_ms"`
}

func summarize(results []*workerResult, elapsed time.Duration, conc, values, width int, dist string, t1 float64) summary {
	s := summary{
		Concurrency: conc, Duration: elapsed.Seconds(),
		Values: values, Width: width, Dist: dist, T1: t1,
	}
	var lat, latHit, latMiss []float64
	var stageLat [trace.NumStages][]float64
	var up, down int64
	for _, r := range results {
		s.OK += r.ok
		s.Shed += r.shed
		s.Errors += r.errs
		s.Corrupt += r.corrupt
		up += r.bytesUp
		down += r.bytesDown
		s.QueryBytesTouched += r.touched
		s.QueryBytesTotal += r.total
		s.CacheHits += r.cacheHits
		s.CacheMisses += r.cacheMisses
		s.CachePrefetch += r.cachePrefetch
		lat = append(lat, r.lat...)
		latHit = append(latHit, r.latHit...)
		latMiss = append(latMiss, r.latMiss...)
		for st := range r.stageLat {
			stageLat[st] = append(stageLat[st], r.stageLat[st]...)
		}
	}
	for st, samples := range stageLat {
		if len(samples) == 0 {
			continue
		}
		sort.Float64s(samples)
		var sum float64
		for _, v := range samples {
			sum += v
		}
		if s.Stages == nil {
			s.Stages = make(map[string]loadStage)
		}
		s.Stages[trace.Stage(st).String()] = loadStage{
			Count:  int64(len(samples)),
			MeanMs: 1000 * sum / float64(len(samples)),
			P50ms:  1000 * percentile(samples, 0.50),
			P99ms:  1000 * percentile(samples, 0.99),
		}
	}
	if s.QueryBytesTotal > 0 {
		s.QueryTraffic = float64(s.QueryBytesTouched) / float64(s.QueryBytesTotal)
	}
	total := s.OK + s.Shed + s.Errors
	if total > 0 {
		s.ShedRate = float64(s.Shed) / float64(total)
	}
	if s.Duration > 0 {
		s.Throughput = float64(s.OK) / s.Duration
		s.MBpsUp = float64(up) / 1e6 / s.Duration
		s.MBpsDown = float64(down) / 1e6 / s.Duration
	}
	sort.Float64s(lat)
	s.P50ms = 1000 * percentile(lat, 0.50)
	s.P90ms = 1000 * percentile(lat, 0.90)
	s.P99ms = 1000 * percentile(lat, 0.99)
	if len(lat) > 0 {
		s.MaxMs = 1000 * lat[len(lat)-1]
	}
	if s.CacheHits+s.CacheMisses > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
		sort.Float64s(latHit)
		sort.Float64s(latMiss)
		s.HitP50ms = 1000 * percentile(latHit, 0.50)
		s.HitP99ms = 1000 * percentile(latHit, 0.99)
		s.MissP50ms = 1000 * percentile(latMiss, 0.50)
		s.MissP99ms = 1000 * percentile(latMiss, 0.99)
	}
	// Achieved ratio from the wire accounting. Per OK request the mean
	// bytes moved is (up+down)/OK; an encode leg moves payload+enc and a
	// decode leg enc+payload, so that mean is payload+enc and the
	// achieved ratio is payload/enc.
	if down > 0 && up > 0 && s.OK > 0 {
		perReq := float64(up+down) / float64(s.OK)
		payload := float64(values * width / 8)
		if enc := perReq - payload; enc > 0 {
			s.EncodeRatio = payload / enc
		}
	}
	return s
}

// percentile returns the p-quantile of sorted (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (s summary) print(base string) {
	fmt.Printf("avrload: %s mode, %.1fs @ %d conns against %s (%d × fp%d, dist %s, t1 %g)\n",
		s.Mode, s.Duration, s.Concurrency, base, s.Values, s.Width, s.Dist, s.T1)
	fmt.Printf("  requests:   %d ok, %d shed (%.2f%%), %d errors, %d corrupt\n",
		s.OK, s.Shed, 100*s.ShedRate, s.Errors, s.Corrupt)
	fmt.Printf("  throughput: %.1f req/s, %.1f MB/s up, %.1f MB/s down\n",
		s.Throughput, s.MBpsUp, s.MBpsDown)
	if s.Batch > 0 {
		fmt.Printf("  batching:   %d keys/request → %.1f keys/s\n", s.Batch, s.KeysPerSec)
	}
	fmt.Printf("  latency:    p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms\n",
		s.P50ms, s.P90ms, s.P99ms, s.MaxMs)
	for st := 0; st < trace.NumStages; st++ {
		name := trace.Stage(st).String()
		d, ok := s.Stages[name]
		if !ok {
			continue
		}
		fmt.Printf("  stage %-9s p50 %.3fms  p99 %.3fms  mean %.3fms  (n=%d)\n",
			name+":", d.P50ms, d.P99ms, d.MeanMs, d.Count)
	}
	if s.CacheHits+s.CacheMisses > 0 {
		fmt.Printf("  cache:      %.1f%% hit (%d hit / %d miss, %d via prefetch)\n",
			100*s.CacheHitRate, s.CacheHits, s.CacheMisses, s.CachePrefetch)
		fmt.Printf("  hit  lat:   p50 %.3fms  p99 %.3fms\n", s.HitP50ms, s.HitP99ms)
		fmt.Printf("  miss lat:   p50 %.3fms  p99 %.3fms\n", s.MissP50ms, s.MissP99ms)
	}
	if s.EncodeRatio > 0 {
		if s.Mode == "store" || s.Mode == "storehot" || s.Mode == "query" {
			fmt.Printf("  ratio:      %.2f:1 achieved on disk (store stats)\n", s.EncodeRatio)
		} else {
			fmt.Printf("  ratio:      %.2f:1 achieved on the encode path\n", s.EncodeRatio)
		}
	}
	if s.QueryBytesTotal > 0 {
		fmt.Printf("  traffic:    aggregates touched %d of %d raw bytes (%.4f)\n",
			s.QueryBytesTouched, s.QueryBytesTotal, s.QueryTraffic)
	}
	switch {
	case s.Corrupt > 0 && s.Mode == "query":
		fmt.Printf("  VERIFY FAILED: %d query responses beyond their error bound\n", s.Corrupt)
	case s.Corrupt > 0 && (s.Mode == "store" || s.Mode == "storehot" || s.Mode == "cluster"):
		fmt.Printf("  VERIFY FAILED: %d gets beyond the t1 bound\n", s.Corrupt)
	case s.Corrupt > 0:
		fmt.Printf("  VERIFY FAILED: %d responses differ from the direct codec\n", s.Corrupt)
	case s.OK == 0:
		fmt.Println("  FAILED: no successful requests")
	case s.Mode == "query":
		fmt.Println("  verify:     every query answer within its reported error bound")
	case s.Mode == "store" || s.Mode == "storehot" || s.Mode == "cluster":
		fmt.Println("  verify:     every get within the t1 bound of its put")
	default:
		fmt.Println("  verify:     all responses byte-identical to the direct codec")
	}
}
