// Command avrtables regenerates the paper's evaluation tables and
// figures (Tables 3–4, Figures 9–15, plus the §4.2 overhead accounting)
// by running the full benchmark × design matrix.
//
// Usage:
//
//	avrtables                 # every experiment at small scale
//	avrtables -exp fig11      # one experiment
//	avrtables -scale slice    # Table 1 slice configuration (slower)
//	avrtables -csv out/       # also write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"avr/internal/experiments"
	"avr/internal/sim"
	"avr/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+") or 'all'")
	scale := flag.String("scale", "small", "input scale: small or slice")
	csvDir := flag.String("csv", "", "directory to write CSV files into (optional)")
	flag.Parse()

	sc := workloads.ScaleSmall
	if *scale == "slice" {
		sc = workloads.ScaleSlice
	}
	r := experiments.NewRunner(sc)

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	// Warm the matrix concurrently: every experiment shares the runs.
	start := time.Now()
	fmt.Fprintf(os.Stderr, "running benchmark x design matrix (%s scale)...\n", *scale)
	if err := r.Prefetch(experiments.Benchmarks(), sim.Designs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "matrix complete in %v\n\n", time.Since(start).Round(time.Second))

	for _, id := range ids {
		rep, err := r.ByID(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n%s\n", rep.Title, rep.Text)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, rep.ID+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
