// Command avrtables regenerates the paper's evaluation tables and
// figures (Tables 3–4, Figures 9–15, plus the §4.2 overhead accounting)
// by running the full benchmark × design matrix.
//
// Usage:
//
//	avrtables                 # every experiment at small scale
//	avrtables -exp fig11      # one experiment
//	avrtables -scale slice    # Table 1 slice configuration (slower)
//	avrtables -csv out/       # also write CSV files
//	avrtables -workers 4      # bound the worker pool (default GOMAXPROCS)
//	avrtables -cache-dir .avr # persist results; reruns skip simulation
//	avrtables -q              # suppress per-run progress lines
//	avrtables -manifest-dir m # write one JSON run manifest per run
//	avrtables -debug-addr :0  # live expvar + pprof while the matrix runs
//
// Results are bit-identical for every worker count: the simulated
// clocks are deterministic and reports render from a memoised matrix.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"avr/internal/cliutil"
	"avr/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+") or 'all'")
	var scale, debugAddr string
	cliutil.RegisterScale(flag.CommandLine, &scale)
	cliutil.RegisterDebug(flag.CommandLine, &debugAddr)
	csvDir := flag.String("csv", "", "directory to write CSV files into (optional)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persistent result cache directory (optional)")
	manifestDir := flag.String("manifest-dir", "", "directory to write one JSON run manifest per completed run (optional)")
	quiet := flag.Bool("q", false, "suppress per-run progress lines")
	flag.Parse()

	sc, err := cliutil.ResolveScale(scale)
	if err != nil {
		cliutil.Fatal(err)
	}
	cliutil.StartDebug(debugAddr)
	r := experiments.NewRunner(sc)
	r.Workers = *workers
	r.CacheDir = *cacheDir
	r.ManifestDir = *manifestDir
	if !*quiet {
		r.Progress = os.Stderr
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	// Warm every run up front, sharded across the pool; the experiments
	// then render from the memoised matrix. A single requested
	// experiment skips this — it shards just its own units internally.
	start := time.Now()
	if *exp == "all" {
		fmt.Fprintf(os.Stderr, "running benchmark x design matrix and sweeps (%s scale, %d workers)...\n",
			sc, r.PoolSize())
		if err := r.PrefetchAll(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "matrix complete in %v (%d simulated, rest cached)\n\n",
			time.Since(start).Round(time.Second), r.Simulations())
	}

	for _, id := range ids {
		rep, err := r.ByID(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n%s\n", rep.Title, rep.Text)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, rep.ID+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
