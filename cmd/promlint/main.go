// Command promlint validates a Prometheus text-format exposition
// (version 0.0.4) against the same strict linter the unit tests use
// (internal/obs.LintExposition): HELP/TYPE grammar, metric name
// charset, cumulative histogram bucket monotonicity, +Inf/_count
// agreement, and _sum/_count presence.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promlint      # stdin
//	promlint metrics.txt                           # file
//
// Exit status: 0 when the exposition is clean, 1 with the first
// violation on stderr otherwise. scripts/serve_smoke.sh runs it against
// a live daemon on every CI smoke.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"avr/internal/cliutil"
	"avr/internal/obs"
)

func main() {
	flag.Parse()
	var data []byte
	var err error
	switch flag.NArg() {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		data, err = os.ReadFile(flag.Arg(0))
	default:
		cliutil.Fatal(fmt.Errorf("usage: promlint [exposition-file]"))
	}
	if err != nil {
		cliutil.Fatal(err)
	}
	if err := obs.LintExposition(data); err != nil {
		cliutil.Fatal(err)
	}
	fmt.Println("exposition ok")
}
