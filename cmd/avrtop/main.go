// Command avrtop is a live terminal dashboard for avrd instances: it
// polls /v1/stats and /metrics on an interval and redraws a compact
// fleet view — request and shed rates, error rate, in-flight depth,
// wire throughput, achieved compression ratio, the compressed-domain
// traffic-touched fraction, and an ASCII bar chart of per-stage p99
// latency (the tracer's histograms, so the bars show where requests
// actually spend their time).
//
// Usage:
//
//	avrtop -addr localhost:8080                 # redraw every second
//	avrtop -addr-file /tmp/avrd.addr -interval 2s
//	avrtop -addr localhost:8080 -once           # one frame, no clearing
//	avrtop -addr localhost:8080 -frames 10      # ten frames, then exit
//	avrtop -addr node0:8080,node1:8080,node2:8080   # a sharded cluster
//
// With a comma-separated -addr list, each node gets its own panel under
// a fleet summary line (nodes up, summed request rate and wire
// throughput). A node that stops answering shows as DOWN and keeps the
// rest of the dashboard alive — exactly the situation a sharded cluster
// dashboard is for.
//
// Rates are computed from counter deltas between polls, so the first
// frame shows totals only. Exit with ctrl-C (or -frames/-once).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"avr/internal/cliutil"
	"avr/internal/server"
	"avr/internal/trace"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "avrd address (host:port), or a comma-separated list for a cluster")
	addrFile := flag.String("addr-file", "", "read the avrd address from this file (written by avrd -addr-file)")
	interval := flag.Duration("interval", time.Second, "poll/redraw interval")
	frames := flag.Int("frames", 0, "exit after this many frames (0 = run until interrupted)")
	once := flag.Bool("once", false, "print a single frame without clearing the screen and exit")
	flag.Parse()

	if *addrFile != "" {
		b, err := os.ReadFile(*addrFile)
		if err != nil {
			cliutil.Fatal(err)
		}
		*addr = strings.TrimSpace(string(b))
	}
	addrs := splitAddrs(*addr)
	if len(addrs) == 0 {
		cliutil.Fatal(fmt.Errorf("no addresses in -addr %q", *addr))
	}
	client := &http.Client{Timeout: 10 * time.Second}

	prevs := make([]*sample, len(addrs))
	for n := 0; ; n++ {
		curs := make([]*sample, len(addrs))
		errs := make([]error, len(addrs))
		down := 0
		for i, a := range addrs {
			curs[i], errs[i] = poll(client, "http://"+a)
			if errs[i] != nil {
				down++
			}
		}
		// A fully dark fleet on the first frame is a config error, not
		// an outage worth dashboarding.
		if n == 0 && down == len(addrs) {
			cliutil.Fatal(errs[0])
		}
		frame := renderFleet(addrs, prevs, curs, errs)
		if *once {
			fmt.Print(frame)
			return
		}
		// Home the cursor and clear below: repaint without scrollback spam.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		if *frames > 0 && n+1 >= *frames {
			return
		}
		for i, c := range curs {
			if c != nil {
				prevs[i] = c
			}
		}
		time.Sleep(*interval)
	}
}

// splitAddrs parses the -addr value: one host:port, or a comma-
// separated list for a sharded cluster.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// sample is one poll of the daemon: the /v1/stats document plus the
// scalar families scraped off /metrics.
type sample struct {
	at      time.Time
	stats   server.Stats
	metrics map[string]float64
}

func poll(client *http.Client, base string) (*sample, error) {
	s := &sample{at: time.Now()}

	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&s.stats)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("parsing /v1/stats: %w", err)
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	buf, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("reading /metrics: %w", err)
	}
	s.metrics = parseMetrics(string(buf))
	return s, nil
}

// parseMetrics reads Prometheus text exposition into a flat name→value
// map. Labelled samples (histogram buckets) keep their full
// name{labels} form as the key; comments and blank lines are skipped.
func parseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

// rate returns a per-second delta between samples, or -1 when no
// previous sample exists yet.
func rate(prev *sample, cur *sample, get func(server.Stats) int64) float64 {
	if prev == nil {
		return -1
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return -1
	}
	return float64(get(cur.stats)-get(prev.stats)) / dt
}

// mb scales a byte rate to MB/s, preserving the no-sample marker.
func mb(r float64) float64 {
	if r < 0 {
		return r
	}
	return r / 1e6
}

// fmtRate renders a rate, or the total with a marker on the first frame.
func fmtRate(r float64, total int64, unit string) string {
	if r < 0 {
		return fmt.Sprintf("%d total", total)
	}
	return fmt.Sprintf("%.1f%s", r, unit)
}

// bar renders an ASCII bar of v scaled against max into width cells.
func bar(v, max float64, width int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// renderFleet formats one dashboard frame for the whole address list.
// A single healthy node renders exactly the classic single-node frame;
// multiple nodes get a fleet summary line (nodes up, summed rates)
// followed by one panel per node, with unreachable nodes marked DOWN
// instead of killing the dashboard. Pure, like renderFrame.
func renderFleet(addrs []string, prevs, curs []*sample, errs []error) string {
	if len(addrs) == 1 && errs[0] == nil {
		return renderFrame(addrs[0], prevs[0], curs[0])
	}
	var b strings.Builder
	up := 0
	var reqRate, inRate, outRate float64
	rated := false
	for i := range addrs {
		if errs[i] != nil {
			continue
		}
		up++
		if r := rate(prevs[i], curs[i], func(s server.Stats) int64 { return s.Requests }); r >= 0 {
			reqRate += r
			rated = true
		}
		if r := rate(prevs[i], curs[i], func(s server.Stats) int64 { return s.BytesIn }); r >= 0 {
			inRate += r
		}
		if r := rate(prevs[i], curs[i], func(s server.Stats) int64 { return s.BytesOut }); r >= 0 {
			outRate += r
		}
	}
	fmt.Fprintf(&b, "avrtop fleet — %d/%d nodes up", up, len(addrs))
	if rated {
		fmt.Fprintf(&b, "   Σ req/s %.1f   Σ in %.1f MB/s   Σ out %.1f MB/s",
			reqRate, inRate/1e6, outRate/1e6)
	}
	b.WriteString("\n\n")
	for i, a := range addrs {
		if errs[i] != nil {
			fmt.Fprintf(&b, "avrtop — %s   DOWN (%v)\n\n", a, errs[i])
			continue
		}
		b.WriteString(renderFrame(a, prevs[i], curs[i]))
		b.WriteString("\n")
	}
	return b.String()
}

// renderFrame formats one dashboard frame. Pure: all inputs explicit,
// output a string — so tests can pin the layout without a server.
func renderFrame(addr string, prev, cur *sample) string {
	st := cur.stats
	var b strings.Builder

	fmt.Fprintf(&b, "avrtop — %s   up %s   ready=%v   in-flight %d\n",
		addr, (time.Duration(st.UptimeSeconds * float64(time.Second))).Round(time.Second),
		st.Ready, st.InFlight)
	fmt.Fprintf(&b, "  req/s %-14s shed/s %-12s err/s %-12s shed total %d\n",
		fmtRate(rate(prev, cur, func(s server.Stats) int64 { return s.Requests }), st.Requests, ""),
		fmtRate(rate(prev, cur, func(s server.Stats) int64 { return s.Shed }), st.Shed, ""),
		fmtRate(rate(prev, cur, func(s server.Stats) int64 { return s.Errors }), st.Errors, ""),
		st.Shed)
	ratio := "-"
	if st.Ratio.Count > 0 {
		ratio = fmt.Sprintf("%.2f:1", st.Ratio.Mean())
	}
	fmt.Fprintf(&b, "  in %-16s out %-15s ratio %s\n",
		fmtRate(mb(rate(prev, cur, func(s server.Stats) int64 { return s.BytesIn })), st.BytesIn, " MB/s"),
		fmtRate(mb(rate(prev, cur, func(s server.Stats) int64 { return s.BytesOut })), st.BytesOut, " MB/s"),
		ratio)

	if st.StorePuts > 0 || st.StoreGets > 0 || st.StoreQueries > 0 {
		fmt.Fprintf(&b, "  store: puts %d  gets %d  queries %d  partial-206 %d\n",
			st.StorePuts, st.StoreGets, st.StoreQueries, st.StorePartial)
		if st.QueryBytesTotal > 0 {
			fmt.Fprintf(&b, "  query traffic: touched %.4f of raw bytes (%d / %d)\n",
				float64(st.QueryBytesTouched)/float64(st.QueryBytesTotal),
				st.QueryBytesTouched, st.QueryBytesTotal)
		}
	}

	if st.CacheHits+st.CacheMisses > 0 || st.CacheResidentBytes > 0 {
		ratio := float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
		line := fmt.Sprintf("  cache: hit %.1f%% (%d/%d)  resident %.1f MB in %d lines  evict %d",
			ratio*100, st.CacheHits, st.CacheHits+st.CacheMisses,
			float64(st.CacheResidentBytes)/1e6, st.CacheLines, st.CacheEvictions)
		// Interval hit ratio: the lifetime number hides load shifts.
		hd := rate(prev, cur, func(s server.Stats) int64 { return s.CacheHits })
		md := rate(prev, cur, func(s server.Stats) int64 { return s.CacheMisses })
		if hd >= 0 && md >= 0 && hd+md > 0 {
			line += fmt.Sprintf("  now %.1f%%", hd/(hd+md)*100)
		}
		b.WriteString(line + "\n")
		if st.PrefetchIssued > 0 {
			fmt.Fprintf(&b, "  prefetch: issued %d  useful %d (%.1f%% accurate)\n",
				st.PrefetchIssued, st.PrefetchUseful,
				float64(st.PrefetchUseful)/float64(st.PrefetchIssued)*100)
		}
	}

	// Per-stage p99 bars, scaled to the slowest stage.
	var maxP99 float64
	for _, d := range st.Stages {
		if d.P99Us > maxP99 {
			maxP99 = d.P99Us
		}
	}
	fmt.Fprintf(&b, "  stage p99 (µs):\n")
	for i := 0; i < trace.NumStages; i++ {
		name := trace.Stage(i).String()
		d, ok := st.Stages[name]
		if !ok || d.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "    %-9s %10.1f  %-24s  n=%d\n",
			name, d.P99Us, bar(d.P99Us, maxP99, 24), d.Count)
	}

	if spans, ok := cur.metrics["avr_trace_spans"]; ok {
		exported := cur.metrics["avr_trace_exported"]
		fmt.Fprintf(&b, "  traces: %d spans, %d exported\n", int64(spans), int64(exported))
	}
	if compactions, ok := cur.metrics["avr_store_compactions"]; ok {
		fmt.Fprintf(&b, "  compactions: %d (%.0f MB rewritten)\n",
			int64(compactions), cur.metrics["avr_store_compacted_bytes"]/1e6)
	}
	fmt.Fprintf(&b, "  latency e2e: p50 %.1fµs  p99 %.1fµs  (n=%d)\n",
		st.Latency.Quantile(0.50), st.Latency.Quantile(0.99), st.Latency.Count)
	return b.String()
}
