package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"avr/internal/server"
)

func TestParseMetrics(t *testing.T) {
	text := strings.Join([]string{
		"# HELP avr_server_requests requests",
		"# TYPE avr_server_requests counter",
		"avr_server_requests 42",
		"avr_trace_spans 7",
		`avr_server_latency_bucket{le="100"} 3`,
		"avr_server_latency_sum 1234.5",
		"",
		"garbage-without-value",
	}, "\n")
	m := parseMetrics(text)
	if m["avr_server_requests"] != 42 {
		t.Errorf("requests = %g, want 42", m["avr_server_requests"])
	}
	if m["avr_trace_spans"] != 7 {
		t.Errorf("spans = %g, want 7", m["avr_trace_spans"])
	}
	if m[`avr_server_latency_bucket{le="100"}`] != 3 {
		t.Errorf("bucket sample lost: %v", m)
	}
	if m["avr_server_latency_sum"] != 1234.5 {
		t.Errorf("sum = %g", m["avr_server_latency_sum"])
	}
	if _, ok := m["garbage-without-value"]; ok {
		t.Error("unparseable line should be skipped")
	}
}

func TestBar(t *testing.T) {
	if got := bar(100, 100, 10); got != strings.Repeat("#", 10) {
		t.Errorf("full bar = %q", got)
	}
	if got := bar(1, 1000, 10); got != "#" {
		t.Errorf("tiny nonzero value must still show one cell, got %q", got)
	}
	if got := bar(0, 100, 10); got != "" {
		t.Errorf("zero value draws %q", got)
	}
	if got := bar(200, 100, 10); got != strings.Repeat("#", 10) {
		t.Errorf("overscale clamps to width, got %q", got)
	}
	if got := bar(50, 0, 10); got != "" {
		t.Errorf("zero max draws %q", got)
	}
}

func testStats() server.Stats {
	return server.Stats{
		UptimeSeconds: 12.3,
		Ready:         true,
		Requests:      100,
		Shed:          5,
		BytesIn:       1e6,
		BytesOut:      5e5,
		StorePuts:     3,
		StoreGets:     2,
		StoreQueries:  4,

		CacheHits:          75,
		CacheMisses:        25,
		CacheResidentBytes: 2e6,
		CacheLines:         12,
		CacheEvictions:     1,
		PrefetchIssued:     10,
		PrefetchUseful:     8,
		Stages: map[string]server.StageStats{
			"queue":  {Count: 100, MeanUs: 5, P50Us: 4, P99Us: 20},
			"encode": {Count: 100, MeanUs: 50, P50Us: 45, P99Us: 200},
		},
	}
}

func TestRenderFrameFirstAndDelta(t *testing.T) {
	cur := &sample{
		at:      time.Now(),
		stats:   testStats(),
		metrics: map[string]float64{"avr_trace_spans": 100, "avr_trace_exported": 2},
	}
	frame := renderFrame("host:1", nil, cur)
	for _, want := range []string{
		"avrtop — host:1",
		"ready=true",
		"100 total", // no previous sample: totals, not rates
		"store: puts 3  gets 2  queries 4",
		"cache: hit 75.0% (75/100)  resident 2.0 MB in 12 lines  evict 1",
		"prefetch: issued 10  useful 8 (80.0% accurate)",
		"queue", "encode", "#",
		"traces: 100 spans, 2 exported",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// The slowest stage owns the full-width bar.
	if !strings.Contains(frame, strings.Repeat("#", 24)) {
		t.Errorf("no full-width bar for the dominant stage:\n%s", frame)
	}

	prev := &sample{at: cur.at.Add(-2 * time.Second), stats: server.Stats{Requests: 50}}
	frame = renderFrame("host:1", prev, cur)
	if !strings.Contains(frame, "req/s 25.0") {
		t.Errorf("rate from counter delta missing (want req/s 25.0):\n%s", frame)
	}
}

func TestSplitAddrs(t *testing.T) {
	if got := splitAddrs("a:1"); len(got) != 1 || got[0] != "a:1" {
		t.Errorf("single addr: %v", got)
	}
	got := splitAddrs(" a:1, b:2 ,,c:3 ")
	if len(got) != 3 || got[0] != "a:1" || got[1] != "b:2" || got[2] != "c:3" {
		t.Errorf("list with spaces and empties: %v", got)
	}
	if got := splitAddrs(" , "); got != nil {
		t.Errorf("all-empty list: %v", got)
	}
}

// TestRenderFleet: multi-node frames get a fleet summary, per-node
// panels, DOWN markers for unreachable nodes, and summed rates.
func TestRenderFleet(t *testing.T) {
	addrs := []string{"n0:1", "n1:1", "n2:1"}
	now := time.Now()
	mk := func(req, bin int64) *sample {
		st := testStats()
		st.Requests, st.BytesIn = req, bin
		return &sample{at: now, stats: st}
	}
	mkPrev := func(req, bin int64) *sample {
		s := mk(req, bin)
		s.at = now.Add(-2 * time.Second)
		return s
	}
	curs := []*sample{mk(300, 2e6), nil, mk(100, 4e6)}
	prevs := []*sample{mkPrev(100, 0), nil, mkPrev(0, 0)}
	errs := []error{nil, http.ErrServerClosed, nil}

	frame := renderFleet(addrs, prevs, curs, errs)
	for _, want := range []string{
		"avrtop fleet — 2/3 nodes up",
		"Σ req/s 150.0", // (300-100)/2 + (100-0)/2
		"Σ in 3.0 MB/s", // (2e6 + 4e6) / 2s / 1e6
		"avrtop — n0:1",
		"avrtop — n1:1   DOWN",
		"avrtop — n2:1",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("fleet frame missing %q:\n%s", want, frame)
		}
	}

	// A single healthy node renders the classic frame, no fleet header.
	solo := renderFleet([]string{"n0:1"}, []*sample{nil}, []*sample{mk(10, 0)}, []error{nil})
	if strings.Contains(solo, "fleet") {
		t.Errorf("single-node frame grew a fleet header:\n%s", solo)
	}
	if !strings.Contains(solo, "avrtop — n0:1") {
		t.Errorf("single-node frame broken:\n%s", solo)
	}
}

// TestPollAgainstLiveServer drives poll() end to end against a real
// Server: stats parse into the pinned shape and the /metrics scrape
// yields the families the dashboard reads.
func TestPollAgainstLiveServer(t *testing.T) {
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sm, err := poll(http.DefaultClient, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !sm.stats.Ready {
		t.Error("live server reports not ready")
	}
	if sm.stats.Stages == nil || len(sm.stats.Stages) == 0 {
		t.Error("stats stages map empty")
	}
	if _, ok := sm.metrics["avr_server_requests"]; !ok {
		t.Errorf("metrics scrape missing avr_server_requests: %d keys", len(sm.metrics))
	}
	frame := renderFrame("live", nil, sm)
	if !strings.Contains(frame, "avrtop — live") {
		t.Errorf("render of live sample broken:\n%s", frame)
	}
}
