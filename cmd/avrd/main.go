// Command avrd serves the AVR fp32/fp64 codec over HTTP: raw
// little-endian values in, AVR streams out, and the reverse. It is the
// serving face of the repository — bounded concurrency with 429
// load-shedding instead of unbounded queues, per-request error
// thresholds, graceful drain on SIGTERM, and the avr.* expvar
// counters/histograms on -debug-addr.
//
// Usage:
//
//	avrd -addr localhost:8080 -workers 8 -queue 64 -t1 0.03125
//	curl -s --data-binary @values.f32le 'localhost:8080/v1/encode?t1=0.0625' > out.avr
//	curl -s --data-binary @out.avr localhost:8080/v1/decode > approx.f32le
//	curl -s localhost:8080/v1/stats | jq .latency
//
// With -store-dir the daemon also serves the persistent approximate
// block store (internal/store) at /v1/store/{put,get,query,key,stats}:
//
//	avrd -addr localhost:8080 -store-dir /var/lib/avr
//	curl -s -X PUT --data-binary @values.f32le 'localhost:8080/v1/store/put?key=temps'
//	curl -s 'localhost:8080/v1/store/get?key=temps' > approx.f32le
//	curl -s 'localhost:8080/v1/store/query?key=temps' | jq .sum
//	curl -s 'localhost:8080/v1/store/query?key=temps&op=filter&lo=0&hi=1' | jq .matches
//	curl -s localhost:8080/v1/store/stats | jq .achieved_ratio
//
// /v1/store/query answers aggregate, range-filter, and 16→1 downsample
// queries in the compressed domain — record summaries, bitmaps and
// outliers instead of decoded payloads — and reports the error bound
// plus bytes_touched/bytes_total traffic accounting with each answer.
//
// Every response carries an X-AVR-Trace request id plus X-AVR-Stage-*
// headers attributing its latency to pipeline stages (queue wait, codec
// pool checkout, encode/decode, segment I/O, lock wait, query walk).
// GET /metrics serves every avr.* counter and histogram in Prometheus
// text exposition format, and -trace-file appends one JSON line per
// sampled request (-trace-sample controls the 1-in-N rate):
//
//	avrd -addr localhost:8080 -trace-file traces.jsonl -trace-sample 16
//	curl -s localhost:8080/metrics | grep avr_trace_stage_queue
//	curl -s localhost:8080/v1/stats | jq .stages
//
// With -addr :0 the bound address is printed on startup and, with
// -addr-file, written to a file for scripts (see scripts/serve_smoke.sh).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"avr/internal/cliutil"
	"avr/internal/server"
	"avr/internal/store"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file (for scripts, with -addr :0)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent codec operations")
	queue := flag.Int("queue", 0, "admission queue depth; 0 = 4×workers (beyond it requests shed with 429)")
	maxBody := flag.Int64("max-body", 8<<20, "max request body bytes (413 above)")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "max wait for a codec worker before 503")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests on shutdown")
	storeDir := flag.String("store-dir", "", "enable the persistent block store rooted at this directory (/v1/store/*)")
	storeRatioFloor := flag.Float64("store-ratio-floor", 0, "min AVR compression ratio before a block falls back to lossless; 0 = default")
	storeSegmentBytes := flag.Int64("store-segment-bytes", 0, "segment roll size in bytes; 0 = default (64 MiB)")
	storeCompactEvery := flag.Duration("store-compact-interval", 30*time.Second, "background compaction cadence; 0 disables the worker")
	storeSync := flag.Bool("store-sync", false, "fsync the active segment after every put (durability over throughput)")
	storeEncWorkers := flag.Int("store-encode-workers", 0, "goroutines encoding a put's blocks in parallel; 0 or 1 = serial")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "summary-line read cache byte budget; 0 disables the cache")
	prefetch := flag.Bool("prefetch", true, "stride-prefetch summary lines on sequential key patterns (needs -cache-bytes > 0)")
	traceSample := flag.Int("trace-sample", 0, "export one of every N request traces as JSONL; 0 = default (64), needs -trace-file")
	traceFile := flag.String("trace-file", "", "append sampled request-trace JSONL to this file (empty disables export)")
	var t1 float64
	cliutil.RegisterT1(flag.CommandLine, &t1)
	var debugAddr string
	cliutil.RegisterDebug(flag.CommandLine, &debugAddr)
	flag.Parse()

	cliutil.StartDebug(debugAddr)

	var st *store.Store
	if *storeDir != "" {
		var err error
		// The store runs at the same quantized threshold the codec pool
		// serves, so clients verifying against the grid (avrload) see one
		// consistent bound across /v1/encode and /v1/store.
		st, err = store.Open(store.Config{
			Dir:                *storeDir,
			T1:                 server.QuantizeT1(t1),
			RatioFloor:         *storeRatioFloor,
			SegmentTargetBytes: *storeSegmentBytes,
			CompactEvery:       *storeCompactEvery,
			SyncEveryPut:       *storeSync,
			EncodeWorkers:      *storeEncWorkers,
			CacheBytes:         *cacheBytes,
			Prefetch:           *prefetch,
		})
		if err != nil {
			cliutil.Fatal(err)
		}
		defer st.Close()
		stats := st.Stats()
		slog.Info("store open", "dir", *storeDir, "keys", stats.Keys,
			"segments", stats.Segments, "disk_bytes", stats.DiskBytes)
	}

	scfg := server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		MaxBodyBytes:     *maxBody,
		QueueTimeout:     *queueTimeout,
		T1:               t1,
		Store:            st,
		TraceSampleEvery: *traceSample,
	}
	if *traceFile != "" {
		tf, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			cliutil.Fatal(err)
		}
		defer tf.Close()
		scfg.TraceSink = tf
		slog.Info("trace export on", "file", *traceFile,
			"sample_every", scfg.TraceSampleEvery)
	}
	srv := server.New(scfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cliutil.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			cliutil.Fatal(err)
		}
	}
	slog.Info("avrd listening", "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queue, "max_body", *maxBody)

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cliutil.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		slog.Info("avrd draining", "timeout", drainTimeout.String())
		sdCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sdCtx); err != nil {
			slog.Error("avrd drain incomplete", "err", err)
			os.Exit(1)
		}
		slog.Info("avrd drained cleanly")
	}
}
