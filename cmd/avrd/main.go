// Command avrd serves the AVR fp32/fp64 codec over HTTP: raw
// little-endian values in, AVR streams out, and the reverse. It is the
// serving face of the repository — bounded concurrency with 429
// load-shedding instead of unbounded queues, per-request error
// thresholds, graceful drain on SIGTERM, and the avr.* expvar
// counters/histograms on -debug-addr.
//
// Usage:
//
//	avrd -addr localhost:8080 -workers 8 -queue 64 -t1 0.03125
//	curl -s --data-binary @values.f32le 'localhost:8080/v1/encode?t1=0.0625' > out.avr
//	curl -s --data-binary @out.avr localhost:8080/v1/decode > approx.f32le
//	curl -s localhost:8080/v1/stats | jq .latency
//
// With -addr :0 the bound address is printed on startup and, with
// -addr-file, written to a file for scripts (see scripts/serve_smoke.sh).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"avr/internal/cliutil"
	"avr/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file (for scripts, with -addr :0)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent codec operations")
	queue := flag.Int("queue", 0, "admission queue depth; 0 = 4×workers (beyond it requests shed with 429)")
	maxBody := flag.Int64("max-body", 8<<20, "max request body bytes (413 above)")
	queueTimeout := flag.Duration("queue-timeout", 2*time.Second, "max wait for a codec worker before 503")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "max wait for in-flight requests on shutdown")
	var t1 float64
	cliutil.RegisterT1(flag.CommandLine, &t1)
	var debugAddr string
	cliutil.RegisterDebug(flag.CommandLine, &debugAddr)
	flag.Parse()

	cliutil.StartDebug(debugAddr)

	srv := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		QueueTimeout: *queueTimeout,
		T1:           t1,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cliutil.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			cliutil.Fatal(err)
		}
	}
	slog.Info("avrd listening", "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queue, "max_body", *maxBody)

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cliutil.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		slog.Info("avrd draining", "timeout", drainTimeout.String())
		sdCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sdCtx); err != nil {
			slog.Error("avrd drain incomplete", "err", err)
			os.Exit(1)
		}
		slog.Info("avrd drained cleanly")
	}
}
